//! Content-addressed compiled-circuit artifact cache.
//!
//! The paper's economics are "pay once, query many": weight vectors and
//! signal probabilities (and the §3 observability matrix) depend only on
//! circuit structure, never on ε⃗, so a long-lived service should compute
//! them once per distinct netlist and amortize them across every
//! subsequent request (§4, Table 2). This cache implements that
//! amortization:
//!
//! * **Keying** — an artifact is addressed by a 128-bit content hash (two
//!   independent 64-bit FNV-1a streams) over the netlist text, its format
//!   tag, and the backend descriptor. Identical text ⇒ same artifact; one
//!   mutated byte ⇒ a different key. No canonicalization is attempted —
//!   whitespace-different netlists compile twice, which is the cheap and
//!   predictable trade.
//! * **Laziness** — parsing happens on first use of a netlist; weight
//!   vectors and the observability matrix are materialized on the first
//!   request that needs them (a Monte Carlo-only client never pays for
//!   BDDs). Each fallible slot is a [`LazySlot`]: single-flight like a
//!   `OnceLock` (concurrent requests block on one computation instead of
//!   racing duplicates), but a **cancelled** materialization releases the
//!   slot instead of freezing the error — the next request recomputes,
//!   so one client's deadline can never poison the artifact for everyone
//!   else. Non-cancellation failures stay sticky, as before.
//! * **Eviction** — least-recently-used, under a configurable byte budget.
//!   Entry sizes are charged up front from circuit structure
//!   ([`Weights::projected_heap_bytes`] plus netlist text and projected
//!   observability payload), so lazy materialization never overdrafts the
//!   budget. An artifact larger than the whole budget is served but not
//!   cached.
//!
//! Evicting an entry another thread is still using is safe: entries hand
//! out `Arc<Artifact>` clones, so memory is reclaimed when the last
//! in-flight request drops its reference.

use crate::proto::{BackendSpec, CircuitPayload, ServeError};
use relogic::{CancelToken, InputDistribution, ObservabilityMatrix, RelogicError, Weights};
use relogic_estimate::PropagationEstimate;
use relogic_netlist::structure::CircuitStats;
use relogic_netlist::Circuit;
use relogic_sim::CircuitTape;
use relogic_store::{ArtifactMeta, Loaded, Store, StoreCountersSnapshot, StoreError, StoreKey};
use std::collections::{HashMap, HashSet};
use std::io::ErrorKind;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock};

/// The 128-bit content address of an artifact.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ArtifactKey(StoreKey);

impl ArtifactKey {
    /// Hashes a circuit payload (netlist text + format + backend).
    ///
    /// Delegates to [`StoreKey::digest`], so the in-memory cache and the
    /// on-disk store can never disagree about a circuit's address.
    #[must_use]
    pub fn of(payload: &CircuitPayload) -> ArtifactKey {
        ArtifactKey(StoreKey::digest(
            payload.format.tag(),
            &payload.backend.cache_tag(),
            &payload.netlist,
        ))
    }

    /// The equivalent on-disk store key.
    #[must_use]
    pub fn store_key(self) -> StoreKey {
        self.0
    }
}

/// The persistent tier behind the in-memory cache: a `relogic-store`
/// directory plus the serve-side degradation policy.
///
/// Every operation is best-effort. A read that misses, quarantines, or
/// errors simply falls back to recompute; a write that fails loses
/// durability, not correctness. When the directory itself is unusable —
/// missing, unwritable, or out of space — the tier **degrades**: one loud
/// stderr line, `cache_dir: "degraded"` in stats/health, and no further
/// disk I/O until restart. Transient error kinds (including every
/// chaos-injected fault) never degrade the tier.
#[derive(Debug)]
pub struct DiskTier {
    store: Option<Store>,
    degraded: AtomicBool,
}

impl DiskTier {
    /// Opens (creating if needed) the store directory. Never fails: an
    /// unusable directory yields a tier that starts degraded.
    #[must_use]
    pub fn open(dir: &Path) -> DiskTier {
        match Store::open(dir) {
            Ok(store) => DiskTier {
                store: Some(store),
                degraded: AtomicBool::new(false),
            },
            Err(err) => {
                eprintln!(
                    "relogic-serve: cache dir unusable, persistence DEGRADED \
                     (serving from memory only): {err}"
                );
                DiskTier {
                    store: None,
                    degraded: AtomicBool::new(true),
                }
            }
        }
    }

    /// Attaches a fault injector to the underlying store (disk sites).
    #[cfg(feature = "chaos")]
    pub fn set_chaos(&mut self, chaos: Arc<relogic_sim::chaos::Chaos>) {
        if let Some(store) = &mut self.store {
            store.set_chaos(chaos);
        }
    }

    /// `true` once the tier has stopped doing disk I/O.
    #[must_use]
    pub fn is_degraded(&self) -> bool {
        self.degraded.load(Ordering::Relaxed)
    }

    /// Store counters (hits/misses/quarantined/writes); zeros when
    /// degraded from the start.
    #[must_use]
    pub fn counters(&self) -> StoreCountersSnapshot {
        self.store.as_ref().map(Store::counters).unwrap_or_default()
    }

    /// Live artifact bytes in the store directory (0 when degraded or
    /// unscannable).
    #[must_use]
    pub fn bytes_on_disk(&self) -> u64 {
        if self.is_degraded() {
            return 0;
        }
        self.store
            .as_ref()
            .and_then(|s| s.bytes_on_disk().ok())
            .unwrap_or(0)
    }

    fn active(&self) -> Option<&Store> {
        if self.is_degraded() {
            None
        } else {
            self.store.as_ref()
        }
    }

    /// Applies the degradation policy to a store failure: persistent
    /// error kinds switch the tier off (loudly, once); transient kinds —
    /// including every chaos-injected fault — are tolerated silently.
    fn note(&self, err: &StoreError) {
        let persistent = matches!(
            err.kind(),
            ErrorKind::PermissionDenied
                | ErrorKind::StorageFull
                | ErrorKind::NotFound
                | ErrorKind::NotADirectory
                | ErrorKind::ReadOnlyFilesystem
        );
        if persistent && !self.degraded.swap(true, Ordering::Relaxed) {
            eprintln!(
                "relogic-serve: cache dir unusable, persistence DEGRADED \
                 (serving from memory only): {err}"
            );
        }
    }

    fn load_weights(&self, key: StoreKey) -> Option<Weights> {
        let loaded = match self.active()?.load_weights(key) {
            Ok(l) => l,
            Err(e) => {
                self.note(&e);
                return None;
            }
        };
        loaded.hit()
    }

    fn load_observability(&self, key: StoreKey) -> Option<ObservabilityMatrix> {
        let loaded = match self.active()?.load_observability(key) {
            Ok(l) => l,
            Err(e) => {
                self.note(&e);
                return None;
            }
        };
        loaded.hit()
    }

    fn load_tape(&self, key: StoreKey) -> Option<CircuitTape> {
        let loaded = match self.active()?.load_tape(key) {
            Ok(l) => l,
            Err(e) => {
                self.note(&e);
                return None;
            }
        };
        loaded.hit()
    }

    fn load_estimate(&self, key: StoreKey) -> Option<PropagationEstimate> {
        let loaded = match self.active()?.load_estimate(key) {
            Ok(l) => l,
            Err(e) => {
                self.note(&e);
                return None;
            }
        };
        loaded.hit()
    }

    fn save_meta(&self, key: StoreKey, meta: &ArtifactMeta) {
        // Skip rewriting provenance the store already has: meta is tiny
        // but every serve hit would otherwise pay a disk write.
        if let Some(store) = self.active() {
            if matches!(store.load_meta(key), Ok(Loaded::Hit(_))) {
                return;
            }
            if let Err(e) = store.save_meta(key, meta) {
                self.note(&e);
            }
        }
    }

    fn save_weights(&self, key: StoreKey, weights: &Weights) {
        if let Some(store) = self.active() {
            if let Err(e) = store.save_weights(key, weights) {
                self.note(&e);
            }
        }
    }

    fn save_observability(&self, key: StoreKey, matrix: &ObservabilityMatrix) {
        if let Some(store) = self.active() {
            if let Err(e) = store.save_observability(key, matrix) {
                self.note(&e);
            }
        }
    }

    fn save_tape(&self, key: StoreKey, tape: &CircuitTape) {
        if let Some(store) = self.active() {
            if let Err(e) = store.save_tape(key, tape) {
                self.note(&e);
            }
        }
    }

    fn save_estimate(&self, key: StoreKey, estimate: &PropagationEstimate) {
        if let Some(store) = self.active() {
            if let Err(e) = store.save_estimate(key, estimate) {
                self.note(&e);
            }
        }
    }
}

/// A lazily materialized, single-flight artifact slot that **never caches
/// a cancellation**.
///
/// `OnceLock<Result<…>>` slots have one failure mode under deadlines: a
/// request whose token fires mid-materialization would freeze its
/// `Cancelled` error into the slot, poisoning the artifact for every
/// later request. This slot keeps the same single-flight economics (one
/// builder, waiters block) with three sticky outcomes instead of two:
///
/// * success — the value is frozen in a `OnceLock`, exactly as before;
/// * non-cancellation failure (budget trip, backend error) — cached so a
///   doomed compute is not re-run per request;
/// * cancellation — the slot **resets to empty** and waiters are woken;
///   the next request recomputes from scratch.
#[derive(Debug)]
struct LazySlot<T> {
    /// The materialized value; written once, by the builder that completes.
    value: OnceLock<T>,
    state: Mutex<SlotState>,
    /// Signalled whenever a builder finishes (any outcome).
    done: Condvar,
}

// Derived `Default` would demand `T: Default`; an empty slot needs no
// value at all.
impl<T> Default for LazySlot<T> {
    fn default() -> Self {
        LazySlot {
            value: OnceLock::new(),
            state: Mutex::new(SlotState::default()),
            done: Condvar::new(),
        }
    }
}

#[derive(Debug, Default)]
struct SlotState {
    /// A builder is running right now; waiters block on `done`.
    building: bool,
    /// Sticky non-cancellation failure.
    failed: Option<RelogicError>,
}

/// Clears `building` and wakes waiters on every builder exit — success,
/// typed failure, cancellation, or panic — so a waiter can never block on
/// a builder that is gone.
struct BuildGuard<'a> {
    state: &'a Mutex<SlotState>,
    done: &'a Condvar,
}

impl Drop for BuildGuard<'_> {
    fn drop(&mut self) {
        let mut state = match self.state.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        state.building = false;
        drop(state);
        self.done.notify_all();
    }
}

impl<T> LazySlot<T> {
    fn lock(&self) -> MutexGuard<'_, SlotState> {
        match self.state.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// The value if it is already materialized; never builds.
    fn peek(&self) -> Option<&T> {
        self.value.get()
    }

    /// Returns the materialized value, building it if this call is first.
    /// Concurrent callers block until the builder finishes; a cancelled
    /// build leaves the slot empty so the next caller rebuilds.
    fn get_or_build(
        &self,
        build: impl FnOnce() -> Result<T, RelogicError>,
    ) -> Result<&T, RelogicError> {
        if let Some(v) = self.value.get() {
            return Ok(v);
        }
        let mut state = self.lock();
        loop {
            if let Some(v) = self.value.get() {
                return Ok(v);
            }
            if let Some(e) = &state.failed {
                return Err(e.clone());
            }
            if !state.building {
                break;
            }
            state = match self.done.wait(state) {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
        }
        state.building = true;
        drop(state);
        let guard = BuildGuard {
            state: &self.state,
            done: &self.done,
        };
        match build() {
            Ok(v) => {
                let _ = self.value.set(v);
                drop(guard);
                match self.value.get() {
                    Some(v) => Ok(v),
                    None => unreachable!("the sole builder just set the value"),
                }
            }
            Err(e) => {
                // A cancellation is the caller's deadline, not the
                // artifact's fault: leave the slot empty for the next
                // request. Anything else is cached as before.
                if !matches!(e, RelogicError::Cancelled(_)) {
                    self.lock().failed = Some(e.clone());
                }
                drop(guard);
                Err(e)
            }
        }
    }
}

/// A compiled circuit: the parsed netlist plus lazily materialized,
/// ε-independent analysis state (weight vectors, correlation-seed inputs,
/// observability matrix).
#[derive(Debug)]
pub struct Artifact {
    circuit: Circuit,
    stats: CircuitStats,
    backend: BackendSpec,
    key: ArtifactKey,
    /// The persistent tier, when the service runs with `--cache-dir`.
    /// Read-through and write-through happen inside the slot builders
    /// below, so disk I/O inherits their single-flight semantics for
    /// free.
    disk: Option<Arc<DiskTier>>,
    weights: LazySlot<Weights>,
    observability: LazySlot<ObservabilityMatrix>,
    tape: OnceLock<CircuitTape>,
    estimate: LazySlot<PropagationEstimate>,
}

impl Artifact {
    fn compile(
        payload: &CircuitPayload,
        key: ArtifactKey,
        disk: Option<Arc<DiskTier>>,
    ) -> Result<Artifact, ServeError> {
        let circuit = payload
            .format
            .parse_netlist(&payload.netlist)
            .map_err(|e| ServeError::netlist(&e))?;
        let stats = CircuitStats::of(&circuit);
        if let Some(disk) = &disk {
            // Write-through provenance on first compile: `relogic cache
            // warm`/`ls` need it, and a warm restart re-parses from it.
            disk.save_meta(
                key.store_key(),
                &ArtifactMeta {
                    format_tag: payload.format.tag().to_owned(),
                    backend_tag: payload.backend.cache_tag(),
                    netlist: payload.netlist.clone(),
                },
            );
        }
        Ok(Artifact {
            circuit,
            stats,
            backend: payload.backend,
            key,
            disk,
            weights: LazySlot::default(),
            observability: LazySlot::default(),
            tape: OnceLock::new(),
            estimate: LazySlot::default(),
        })
    }

    /// The parsed circuit.
    #[must_use]
    pub fn circuit(&self) -> &Circuit {
        &self.circuit
    }

    /// Structural statistics, computed once at compile time.
    #[must_use]
    pub fn stats(&self) -> &CircuitStats {
        &self.stats
    }

    /// The ε-independent weight vectors, materialized on first use.
    /// `counters.weights_computed` increments only when this call actually
    /// runs the backend.
    ///
    /// # Errors
    ///
    /// Propagates the weight backend's [`RelogicError`] (also for callers
    /// arriving after a failed first materialization).
    pub fn weights(&self, counters: &CacheCounters) -> Result<&Weights, ServeError> {
        self.weights_cancellable(counters, &CancelToken::new())
    }

    /// Like [`Artifact::weights`], checking `cancel` before the backend
    /// runs. A cancelled materialization leaves the slot empty — the next
    /// request recomputes instead of observing a frozen `Cancelled`.
    ///
    /// # Errors
    ///
    /// As [`Artifact::weights`], plus the deadline error once the token
    /// has fired.
    pub fn weights_cancellable(
        &self,
        counters: &CacheCounters,
        cancel: &CancelToken,
    ) -> Result<&Weights, ServeError> {
        let slot = self.weights.get_or_build(|| {
            cancel.check("weights_build")?;
            // Read-through: a verified disk artifact is bit-identical to
            // a recompute by the store's contract, so it short-circuits
            // the backend entirely. Misses, quarantines, and I/O errors
            // all fall through to compute + write-through.
            if let Some(disk) = &self.disk {
                if let Some(w) = disk.load_weights(self.key.store_key()) {
                    return Ok(w);
                }
            }
            counters.weights_computed.fetch_add(1, Ordering::Relaxed);
            let weights = Weights::try_compute(
                &self.circuit,
                &InputDistribution::Uniform,
                self.backend.backend(),
            );
            if let (Some(disk), Ok(w)) = (&self.disk, &weights) {
                disk.save_weights(self.key.store_key(), w);
            }
            weights
        });
        slot.map_err(ServeError::from)
    }

    /// The compiled instruction tape (see [`CircuitTape`]), materialized
    /// on first use and shared by every Monte Carlo request against this
    /// artifact. Compilation is infallible for parsed circuits.
    /// `counters.tapes_compiled` increments only when this call actually
    /// compiles.
    pub fn tape(&self, counters: &CacheCounters) -> &CircuitTape {
        self.tape.get_or_init(|| {
            if let Some(disk) = &self.disk {
                if let Some(t) = disk.load_tape(self.key.store_key()) {
                    return t;
                }
            }
            counters.tapes_compiled.fetch_add(1, Ordering::Relaxed);
            let tape = CircuitTape::compile(&self.circuit);
            if let Some(disk) = &self.disk {
                disk.save_tape(self.key.store_key(), &tape);
            }
            tape
        })
    }

    /// The §3 observability matrix, materialized on first use.
    ///
    /// # Errors
    ///
    /// Propagates the backend's [`RelogicError`].
    pub fn observability(
        &self,
        counters: &CacheCounters,
    ) -> Result<&ObservabilityMatrix, ServeError> {
        self.observability_cancellable(counters, &CancelToken::new())
    }

    /// Like [`Artifact::observability`], threading `cancel` into the §3
    /// engine (per-output-chunk and per-node checks; see `relogic`). A
    /// cancelled materialization leaves the slot empty, never poisoned:
    /// the next request recomputes.
    ///
    /// # Errors
    ///
    /// As [`Artifact::observability`], plus the deadline error once the
    /// token has fired.
    pub fn observability_cancellable(
        &self,
        counters: &CacheCounters,
        cancel: &CancelToken,
    ) -> Result<&ObservabilityMatrix, ServeError> {
        let slot = self.observability.get_or_build(|| {
            cancel.check("obs_build")?;
            if let Some(disk) = &self.disk {
                if let Some(m) = disk.load_observability(self.key.store_key()) {
                    // Persisted diagnostics ride along, but the engine
                    // aggregate counts only runs this process executed.
                    return Ok(m);
                }
            }
            counters
                .observability_computed
                .fetch_add(1, Ordering::Relaxed);
            let matrix = ObservabilityMatrix::try_compute_threads_cancellable(
                &self.circuit,
                &InputDistribution::Uniform,
                self.backend.backend(),
                0,
                cancel,
            );
            if let Ok(m) = &matrix {
                if let Some(stats) = m.diagnostics().bdd_stats() {
                    counters.bdd_engine.record(stats);
                }
                if let Some(disk) = &self.disk {
                    disk.save_observability(self.key.store_key(), m);
                }
            }
            matrix
        });
        slot.map_err(ServeError::from)
    }

    /// The observability matrix **only if it is already materialized and
    /// valid** — never triggers a compute. The estimator's exact tier uses
    /// this peek: an answered `observability` request means the exact
    /// answer is free, but a cold artifact must go through the *budgeted*
    /// build instead (which must not poison this slot on a budget trip).
    #[must_use]
    pub fn observability_if_ready(&self) -> Option<&ObservabilityMatrix> {
        self.observability.peek()
    }

    /// The propagation estimate (signal probabilities + per-output
    /// observability estimates), materialized on first use.
    /// `counters.estimates_computed` increments only when this call
    /// actually runs the estimator.
    ///
    /// Returns the raw [`RelogicError`] (not a [`ServeError`]) because the
    /// caller is the escalation policy, which needs the typed error to
    /// decide whether to escalate; wrap with `ServeError::from` at the
    /// protocol boundary.
    ///
    /// # Errors
    ///
    /// Propagates the estimator's [`RelogicError`].
    pub fn propagation_estimate(
        &self,
        counters: &CacheCounters,
    ) -> Result<&PropagationEstimate, RelogicError> {
        self.propagation_estimate_cancellable(counters, &CancelToken::new())
    }

    /// Like [`Artifact::propagation_estimate`], checking `cancel` before
    /// the estimator runs (the estimator itself is linear-time, so one
    /// up-front check is the right granularity). A cancelled
    /// materialization leaves the slot empty.
    ///
    /// # Errors
    ///
    /// As [`Artifact::propagation_estimate`], plus
    /// [`RelogicError::Cancelled`] once the token has fired.
    pub fn propagation_estimate_cancellable(
        &self,
        counters: &CacheCounters,
        cancel: &CancelToken,
    ) -> Result<&PropagationEstimate, RelogicError> {
        self.estimate.get_or_build(|| {
            cancel.check("estimate_build")?;
            if let Some(disk) = &self.disk {
                if let Some(e) = disk.load_estimate(self.key.store_key()) {
                    return Ok(e);
                }
            }
            counters.estimates_computed.fetch_add(1, Ordering::Relaxed);
            let estimate =
                PropagationEstimate::try_compute(&self.circuit, &InputDistribution::Uniform);
            if let (Some(disk), Ok(e)) = (&self.disk, &estimate) {
                disk.save_estimate(self.key.store_key(), e);
            }
            estimate
        })
    }

    /// Up-front byte charge for this artifact: netlist-scale circuit
    /// storage plus the projected weight and observability payloads. A
    /// structural estimate (see module docs), deliberately charged before
    /// lazy materialization so the budget cannot be overdrafted later.
    #[must_use]
    pub fn charged_bytes(&self) -> usize {
        let nodes = self.circuit.len();
        let circuit_bytes = nodes * 96; // node, fanin, and name storage
        let weight_bytes = Weights::projected_heap_bytes(&self.circuit);
        let obs_bytes = ObservabilityMatrix::projected_heap_bytes(&self.circuit);
        let tape_bytes = CircuitTape::projected_heap_bytes(&self.circuit);
        let estimate_bytes = PropagationEstimate::projected_heap_bytes(&self.circuit);
        circuit_bytes + weight_bytes + obs_bytes + tape_bytes + estimate_bytes
    }
}

/// Monotonic counters exposed through the `stats` request.
#[derive(Debug, Default)]
pub struct CacheCounters {
    /// Requests served from an existing artifact.
    pub hits: AtomicU64,
    /// Requests that had to compile a new artifact.
    pub misses: AtomicU64,
    /// Artifacts evicted to respect the byte budget.
    pub evictions: AtomicU64,
    /// Netlists parsed (≤ misses; parse failures count here too).
    pub circuits_parsed: AtomicU64,
    /// Weight-vector tables actually computed (cache hits skip this).
    pub weights_computed: AtomicU64,
    /// Observability matrices actually computed.
    pub observability_computed: AtomicU64,
    /// Circuit tapes actually compiled (cache hits skip this).
    pub tapes_compiled: AtomicU64,
    /// Propagation estimates actually computed (cache hits skip this).
    pub estimates_computed: AtomicU64,
    /// Artifacts larger than the whole budget, served uncached.
    pub uncacheable: AtomicU64,
    /// BDD engine statistics aggregated over every observability
    /// materialization this process has run.
    pub bdd_engine: BddEngineAggregate,
}

/// Lock-free aggregate of [`relogic::BddEngineStats`] across runs: sums
/// for the monotonic counters, maxima for the extrema. `unique_load` is
/// stored in millionths so it fits an atomic integer.
#[derive(Debug, Default)]
pub struct BddEngineAggregate {
    /// Observability materializations that reported engine statistics.
    pub runs: AtomicU64,
    /// High-water mark of live decision nodes in any one run.
    pub peak_live_nodes: AtomicU64,
    /// Worst unique-table load factor seen, in millionths.
    pub unique_load_millionths: AtomicU64,
    /// Operation-cache hits, summed over runs.
    pub cache_hits: AtomicU64,
    /// Operation-cache misses, summed over runs.
    pub cache_misses: AtomicU64,
    /// Garbage collections, summed over runs.
    pub gc_runs: AtomicU64,
    /// Sifting reorder passes, summed over runs.
    pub reorders: AtomicU64,
}

impl BddEngineAggregate {
    /// Folds one run's statistics into the aggregate.
    pub fn record(&self, stats: &relogic::BddEngineStats) {
        self.runs.fetch_add(1, Ordering::Relaxed);
        self.peak_live_nodes.fetch_max(
            u64::try_from(stats.peak_live_nodes).unwrap_or(u64::MAX),
            Ordering::Relaxed,
        );
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let load = (stats.unique_load.clamp(0.0, 1.0) * 1_000_000.0) as u64;
        self.unique_load_millionths
            .fetch_max(load, Ordering::Relaxed);
        self.cache_hits
            .fetch_add(stats.cache_hits, Ordering::Relaxed);
        self.cache_misses
            .fetch_add(stats.cache_misses, Ordering::Relaxed);
        self.gc_runs.fetch_add(stats.gc_runs, Ordering::Relaxed);
        self.reorders.fetch_add(stats.reorders, Ordering::Relaxed);
    }

    /// Worst unique-table load factor seen, as a fraction.
    #[must_use]
    pub fn unique_load(&self) -> f64 {
        #[allow(clippy::cast_precision_loss)]
        {
            self.unique_load_millionths.load(Ordering::Relaxed) as f64 / 1_000_000.0
        }
    }

    /// Aggregate operation-cache hit rate (0 when never consulted).
    #[must_use]
    pub fn cache_hit_rate(&self) -> f64 {
        let hits = self.cache_hits.load(Ordering::Relaxed);
        let total = hits + self.cache_misses.load(Ordering::Relaxed);
        if total == 0 {
            0.0
        } else {
            #[allow(clippy::cast_precision_loss)]
            {
                hits as f64 / total as f64
            }
        }
    }
}

struct Entry {
    artifact: Arc<Artifact>,
    bytes: usize,
    last_used: u64,
}

/// Releases a claimed in-flight compile key on drop and wakes waiters.
/// Dropped on every exit from the compile path (success, parse error,
/// uncacheable, or panic), so a waiter can never block forever.
struct PendingGuard<'a> {
    cache: &'a ArtifactCache,
    key: ArtifactKey,
}

impl Drop for PendingGuard<'_> {
    fn drop(&mut self) {
        let mut inner = self.cache.lock();
        inner.pending.remove(&self.key);
        drop(inner);
        self.cache.compile_done.notify_all();
    }
}

struct CacheInner {
    entries: HashMap<ArtifactKey, Entry>,
    /// Keys being compiled right now. A miss claims its key here before
    /// parsing (single-flight); concurrent lookups for the same key wait
    /// on [`ArtifactCache::compile_done`] instead of re-parsing.
    pending: HashSet<ArtifactKey>,
    total_bytes: usize,
    tick: u64,
}

/// The shared artifact cache: `get_or_compile` is the only lookup path.
pub struct ArtifactCache {
    inner: Mutex<CacheInner>,
    /// Signalled whenever a key leaves `CacheInner::pending`.
    compile_done: Condvar,
    budget_bytes: usize,
    counters: CacheCounters,
    /// The persistent tier (`--cache-dir`); `None` runs memory-only.
    disk: Option<Arc<DiskTier>>,
    #[cfg(feature = "chaos")]
    chaos: Option<Arc<relogic_sim::chaos::Chaos>>,
}

/// Whether a lookup was served from cache or had to compile.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CacheOutcome {
    /// Artifact already compiled.
    Hit,
    /// Artifact compiled by this lookup.
    Miss,
}

impl CacheOutcome {
    /// The wire tag (`"hit"` / `"miss"`).
    #[must_use]
    pub fn tag(self) -> &'static str {
        match self {
            CacheOutcome::Hit => "hit",
            CacheOutcome::Miss => "miss",
        }
    }
}

impl ArtifactCache {
    /// Creates a cache with the given byte budget.
    #[must_use]
    pub fn new(budget_bytes: usize) -> ArtifactCache {
        ArtifactCache {
            inner: Mutex::new(CacheInner {
                entries: HashMap::new(),
                pending: HashSet::new(),
                total_bytes: 0,
                tick: 0,
            }),
            compile_done: Condvar::new(),
            budget_bytes,
            counters: CacheCounters::default(),
            disk: None,
            #[cfg(feature = "chaos")]
            chaos: None,
        }
    }

    /// Attaches a persistent tier. Artifacts compiled afterwards
    /// read-through on materialization miss and write-through on
    /// materialization; disk hits are charged into the same LRU budget as
    /// computed ones (the charge is projected up front either way).
    #[must_use]
    pub fn with_disk_tier(mut self, disk: Option<Arc<DiskTier>>) -> ArtifactCache {
        self.disk = disk;
        self
    }

    /// The persistent tier, when configured.
    #[must_use]
    pub fn disk(&self) -> Option<&Arc<DiskTier>> {
        self.disk.as_ref()
    }

    /// Attaches a fault injector: every lookup first draws
    /// [`ChaosSite::CacheEvict`] (forced full eviction — churn) and
    /// [`ChaosSite::CacheFail`] (the lookup fails with a typed `internal`
    /// error, simulating a materialization failure). The failure is
    /// injected *before* any `OnceLock` is touched, so a retry of the same
    /// request can still succeed.
    ///
    /// [`ChaosSite::CacheEvict`]: relogic_sim::chaos::ChaosSite::CacheEvict
    /// [`ChaosSite::CacheFail`]: relogic_sim::chaos::ChaosSite::CacheFail
    #[cfg(feature = "chaos")]
    #[must_use]
    pub fn with_chaos(mut self, chaos: Arc<relogic_sim::chaos::Chaos>) -> ArtifactCache {
        self.chaos = Some(chaos);
        self
    }

    fn lock(&self) -> MutexGuard<'_, CacheInner> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// The configured byte budget.
    #[must_use]
    pub fn budget_bytes(&self) -> usize {
        self.budget_bytes
    }

    /// The shared counters.
    #[must_use]
    pub fn counters(&self) -> &CacheCounters {
        &self.counters
    }

    /// Entries currently resident and the bytes charged for them.
    #[must_use]
    pub fn usage(&self) -> (usize, usize) {
        let inner = self.lock();
        (inner.entries.len(), inner.total_bytes)
    }

    /// Looks up (or compiles) the artifact for a payload.
    ///
    /// Compilation is single-flight: the first lookup to miss claims the
    /// key and parses outside the cache lock (a slow compile never stalls
    /// hits on *other* circuits); concurrent lookups for the same key wait
    /// for it and then share its artifact as a hit. A netlist is therefore
    /// parsed exactly once per residency no matter how many clients race
    /// the cold cache.
    ///
    /// # Errors
    ///
    /// [`ServeError::Netlist`] when the payload fails to parse. A parse
    /// failure releases the key, so waiting lookups retry (and report
    /// their own parse error) rather than observing a cached failure.
    pub fn get_or_compile(
        &self,
        payload: &CircuitPayload,
    ) -> Result<(Arc<Artifact>, CacheOutcome), ServeError> {
        #[cfg(feature = "chaos")]
        if let Some(chaos) = &self.chaos {
            use relogic_sim::chaos::ChaosSite;
            if chaos.should(ChaosSite::CacheEvict) {
                self.evict_all();
            }
            if chaos.should(ChaosSite::CacheFail) {
                return Err(ServeError::Internal(
                    "chaos: injected artifact materialization failure".into(),
                ));
            }
        }
        let key = ArtifactKey::of(payload);
        {
            let mut inner = self.lock();
            loop {
                inner.tick += 1;
                let tick = inner.tick;
                if let Some(entry) = inner.entries.get_mut(&key) {
                    entry.last_used = tick;
                    self.counters.hits.fetch_add(1, Ordering::Relaxed);
                    return Ok((Arc::clone(&entry.artifact), CacheOutcome::Hit));
                }
                if !inner.pending.contains(&key) {
                    break;
                }
                // Another thread is compiling this key; wait for it, then
                // re-check (the entry appears before the key is released).
                inner = match self.compile_done.wait(inner) {
                    Ok(g) => g,
                    Err(poisoned) => poisoned.into_inner(),
                };
            }
            inner.pending.insert(key);
        }
        // We own the compile for `key`. The guard releases it on every exit
        // path — including a parse panic — so waiters never hang.
        let pending = PendingGuard { cache: self, key };
        self.counters.misses.fetch_add(1, Ordering::Relaxed);
        self.counters
            .circuits_parsed
            .fetch_add(1, Ordering::Relaxed);
        let artifact = Arc::new(Artifact::compile(payload, key, self.disk.clone())?);
        let bytes = artifact.charged_bytes();
        if bytes > self.budget_bytes {
            // Served uncached: the guard releases the key and waiters
            // compile for themselves, matching "never resident" semantics.
            self.counters.uncacheable.fetch_add(1, Ordering::Relaxed);
            return Ok((artifact, CacheOutcome::Miss));
        }
        let mut inner = self.lock();
        inner.tick += 1;
        let tick = inner.tick;
        inner.entries.insert(
            key,
            Entry {
                artifact: Arc::clone(&artifact),
                bytes,
                last_used: tick,
            },
        );
        inner.total_bytes += bytes;
        self.evict_over_budget(&mut inner, key);
        drop(inner);
        drop(pending);
        Ok((artifact, CacheOutcome::Miss))
    }

    /// Evicts least-recently-used entries (never `just_inserted`) until the
    /// budget is respected. Linear scan per eviction: entry counts are
    /// small (tens of circuits, not millions), so an ordered index would
    /// cost more than it saves.
    fn evict_over_budget(&self, inner: &mut CacheInner, just_inserted: ArtifactKey) {
        while inner.total_bytes > self.budget_bytes && inner.entries.len() > 1 {
            let victim = inner
                .entries
                .iter()
                .filter(|(k, _)| **k != just_inserted)
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| *k);
            let Some(victim) = victim else { break };
            if let Some(entry) = inner.entries.remove(&victim) {
                inner.total_bytes -= entry.bytes;
                self.counters.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Drops every resident artifact, counting each as an eviction. An
    /// operational hook (and the chaos engine's churn lever): in-flight
    /// requests holding `Arc<Artifact>` clones are unaffected; memory is
    /// reclaimed as they finish.
    pub fn evict_all(&self) {
        let mut inner = self.lock();
        let dropped = inner.entries.len() as u64;
        inner.entries.clear();
        inner.total_bytes = 0;
        if dropped > 0 {
            self.counters
                .evictions
                .fetch_add(dropped, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::NetlistFormat;

    fn payload(text: &str) -> CircuitPayload {
        CircuitPayload {
            netlist: text.to_owned(),
            format: NetlistFormat::Bench,
            backend: BackendSpec::Bdd,
        }
    }

    const SMALL: &str = "INPUT(a)\nINPUT(b)\nOUTPUT(y)\nt = NAND(a, b)\ny = NOT(t)\n";

    #[test]
    fn second_lookup_hits_and_skips_weight_recomputation() {
        let cache = ArtifactCache::new(1 << 20);
        let (a1, o1) = cache.get_or_compile(&payload(SMALL)).unwrap();
        assert_eq!(o1, CacheOutcome::Miss);
        let w1 = a1
            .weights(cache.counters())
            .unwrap()
            .signal_probs()
            .to_vec();
        let (a2, o2) = cache.get_or_compile(&payload(SMALL)).unwrap();
        assert_eq!(o2, CacheOutcome::Hit);
        let w2 = a2
            .weights(cache.counters())
            .unwrap()
            .signal_probs()
            .to_vec();
        assert_eq!(w1, w2);
        assert!(Arc::ptr_eq(&a1, &a2));
        assert_eq!(cache.counters().weights_computed.load(Ordering::Relaxed), 1);
        assert_eq!(cache.counters().hits.load(Ordering::Relaxed), 1);
        assert_eq!(cache.counters().misses.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn mutated_netlist_misses() {
        let cache = ArtifactCache::new(1 << 20);
        let _ = cache.get_or_compile(&payload(SMALL)).unwrap();
        let mutated = SMALL.replace("NAND", "NOR");
        let (_, o) = cache.get_or_compile(&payload(&mutated)).unwrap();
        assert_eq!(o, CacheOutcome::Miss);
        assert_eq!(cache.counters().misses.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn format_and_backend_partition_the_key_space() {
        let p = payload(SMALL);
        let mut q = p.clone();
        q.backend = BackendSpec::Sim {
            patterns: 64,
            seed: 1,
        };
        assert_ne!(ArtifactKey::of(&p), ArtifactKey::of(&q));
        let mut r = p.clone();
        r.format = NetlistFormat::Blif;
        assert_ne!(ArtifactKey::of(&p), ArtifactKey::of(&r));
    }

    #[test]
    fn parse_failures_are_typed() {
        let cache = ArtifactCache::new(1 << 20);
        let err = cache
            .get_or_compile(&payload("INPUT(a)\nOUTPUT(y)\ny = FROB(a)\n"))
            .unwrap_err();
        assert_eq!(err.code(), "netlist_error");
    }

    #[test]
    fn lru_eviction_respects_byte_budget() {
        // Budget sized to hold roughly one artifact.
        let one = {
            let cache = ArtifactCache::new(usize::MAX);
            let (a, _) = cache.get_or_compile(&payload(SMALL)).unwrap();
            a.charged_bytes()
        };
        let cache = ArtifactCache::new(one + one / 2);
        // Same circuit, four distinct texts (content addressing is exact).
        let texts: Vec<String> = (0..4).map(|i| format!("{SMALL}# v{i}\n")).collect();
        for t in &texts {
            let _ = cache.get_or_compile(&payload(t)).unwrap();
        }
        let (entries, bytes) = cache.usage();
        assert!(bytes <= cache.budget_bytes(), "{bytes} > budget");
        assert!(entries >= 1);
        assert!(cache.counters().evictions.load(Ordering::Relaxed) >= 2);
        // The most recent artifact must still be resident.
        let (_, o) = cache.get_or_compile(&payload(&texts[3])).unwrap();
        assert_eq!(o, CacheOutcome::Hit);
    }

    #[test]
    fn oversized_artifacts_are_served_uncached() {
        let cache = ArtifactCache::new(1);
        let (_, o) = cache.get_or_compile(&payload(SMALL)).unwrap();
        assert_eq!(o, CacheOutcome::Miss);
        let (entries, _) = cache.usage();
        assert_eq!(entries, 0);
        assert_eq!(cache.counters().uncacheable.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn observability_charge_matches_materialized_footprint() {
        let cache = ArtifactCache::new(1 << 20);
        let (a, _) = cache.get_or_compile(&payload(SMALL)).unwrap();
        let obs = a.observability(cache.counters()).unwrap();
        assert_eq!(
            ObservabilityMatrix::projected_heap_bytes(a.circuit()),
            obs.approx_heap_bytes(),
            "cache must charge exactly the projected observability footprint"
        );
    }

    #[test]
    fn evict_all_clears_residency_but_not_inflight_references() {
        let cache = ArtifactCache::new(1 << 20);
        let (held, _) = cache.get_or_compile(&payload(SMALL)).unwrap();
        let _ = cache
            .get_or_compile(&payload(&SMALL.replace("NOT", "BUF")))
            .unwrap();
        let (entries, bytes) = cache.usage();
        assert_eq!(entries, 2);
        assert!(bytes > 0);
        cache.evict_all();
        let (entries, bytes) = cache.usage();
        assert_eq!((entries, bytes), (0, 0));
        assert_eq!(cache.counters().evictions.load(Ordering::Relaxed), 2);
        // The held artifact keeps working after eviction.
        assert!(held.weights(cache.counters()).is_ok());
        // And the next lookup recompiles.
        let (_, o) = cache.get_or_compile(&payload(SMALL)).unwrap();
        assert_eq!(o, CacheOutcome::Miss);
    }

    #[test]
    fn propagation_estimate_is_lazy_and_peek_never_computes() {
        let cache = ArtifactCache::new(1 << 20);
        let (a, _) = cache.get_or_compile(&payload(SMALL)).unwrap();
        // The peek must not trigger a compute.
        assert!(a.observability_if_ready().is_none());
        assert_eq!(
            cache
                .counters()
                .observability_computed
                .load(Ordering::Relaxed),
            0
        );
        let _ = a.propagation_estimate(cache.counters()).unwrap();
        let _ = a.propagation_estimate(cache.counters()).unwrap();
        assert_eq!(
            cache.counters().estimates_computed.load(Ordering::Relaxed),
            1
        );
        let _ = a.observability(cache.counters()).unwrap();
        assert!(a.observability_if_ready().is_some());
    }

    #[test]
    fn cancelled_materialization_does_not_poison_the_slot() {
        // Request A's deadline fires mid-materialization; request B on the
        // same artifact must recompute and succeed instead of observing a
        // frozen `Cancelled`.
        let cache = ArtifactCache::new(1 << 20);
        let (a, _) = cache.get_or_compile(&payload(SMALL)).unwrap();
        let fired = CancelToken::new();
        fired.cancel();

        let err = a
            .observability_cancellable(cache.counters(), &fired)
            .unwrap_err();
        assert_eq!(err.code(), "deadline_exceeded", "{err}");
        assert!(a.observability_if_ready().is_none(), "slot must stay empty");
        assert!(a.observability(cache.counters()).is_ok());
        assert!(a.observability_if_ready().is_some());

        let err = a.weights_cancellable(cache.counters(), &fired).unwrap_err();
        assert_eq!(err.code(), "deadline_exceeded", "{err}");
        assert!(a.weights(cache.counters()).is_ok());

        let err = a
            .propagation_estimate_cancellable(cache.counters(), &fired)
            .unwrap_err();
        assert!(matches!(err, RelogicError::Cancelled(_)), "{err}");
        assert!(a.propagation_estimate(cache.counters()).is_ok());
    }

    #[test]
    fn waiters_on_a_cancelled_builder_recompute_instead_of_hanging() {
        // A holds the slot's build with a fired token while B waits; when
        // A unwinds with `Cancelled`, B must take over and succeed.
        let cache = Arc::new(ArtifactCache::new(1 << 20));
        let (a, _) = cache.get_or_compile(&payload(SMALL)).unwrap();
        let artifact = Arc::clone(&a);
        let cache2 = Arc::clone(&cache);
        let fired = CancelToken::new();
        fired.cancel();
        // Sequential stand-in for the race: the cancelled builder runs
        // first, then the "waiter". The interleaved case is covered by
        // BuildGuard + the Empty reset; this pins the observable contract.
        assert!(artifact
            .observability_cancellable(cache2.counters(), &fired)
            .is_err());
        let fresh = std::thread::spawn(move || artifact.observability(cache2.counters()).is_ok());
        assert!(fresh.join().unwrap());
    }

    #[test]
    fn observability_is_lazy_and_counted_once() {
        let cache = ArtifactCache::new(1 << 20);
        let (a, _) = cache.get_or_compile(&payload(SMALL)).unwrap();
        assert_eq!(
            cache
                .counters()
                .observability_computed
                .load(Ordering::Relaxed),
            0
        );
        let _ = a.observability(cache.counters()).unwrap();
        let _ = a.observability(cache.counters()).unwrap();
        assert_eq!(
            cache
                .counters()
                .observability_computed
                .load(Ordering::Relaxed),
            1
        );
    }
}
