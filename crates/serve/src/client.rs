//! A std-only resilient client for the `relogic-serve` wire protocol.
//!
//! [`Client`] sends one NDJSON request frame per call and retries on
//! transient failures — transport errors, torn frames, `overloaded`
//! sheds, `shutting_down` farewells — under three interacting guards:
//!
//! - a **per-call deadline**: every attempt (connect, write, read) runs
//!   against the time remaining; the call fails with
//!   [`ClientError::DeadlineExceeded`] rather than overshooting.
//! - **decorrelated-jitter exponential backoff**: each retry sleeps
//!   `clamp(base, prev × 3, cap)` with a seeded [`splitmix64`]-driven
//!   uniform draw, honouring the server's `retry_after_ms` hint as a
//!   floor. The seed makes backoff schedules reproducible in tests.
//! - a **retry budget** (token bucket): each retry spends one token,
//!   each success refunds a fraction. Under systemic overload the budget
//!   runs dry and the client fails fast with
//!   [`ClientError::BudgetExhausted`] instead of amplifying the storm.
//!
//! Determinism contract: with a fixed `backoff_seed` the sleep schedule
//! is a pure function of the retry sequence, independent of wall-clock
//! time or thread interleaving.

use crate::json::{self, Json};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Where the daemon listens.
#[derive(Clone, Debug)]
pub enum Endpoint {
    /// A TCP address, e.g. `127.0.0.1:7171`.
    Tcp(String),
    /// A Unix-socket path.
    Unix(PathBuf),
}

/// Client tuning knobs; [`ClientConfig::new`] gives sensible defaults.
#[derive(Clone, Debug)]
pub struct ClientConfig {
    /// Server address.
    pub endpoint: Endpoint,
    /// Hard per-call budget covering every attempt and backoff sleep.
    pub deadline: Duration,
    /// Lower bound of every backoff sleep.
    pub base_backoff: Duration,
    /// Upper bound of every backoff sleep.
    pub max_backoff: Duration,
    /// Seed for the jitter generator; fixed seed ⇒ reproducible sleeps.
    pub backoff_seed: u64,
    /// Maximum retry tokens; each retry costs 1.
    pub retry_budget: f64,
    /// Tokens refunded per successful call (capped at `retry_budget`).
    pub refund: f64,
}

impl ClientConfig {
    /// Defaults: 30 s deadline, 25 ms–1 s backoff, seed 1, budget 10,
    /// refund 0.1 per success.
    #[must_use]
    pub fn new(endpoint: Endpoint) -> ClientConfig {
        ClientConfig {
            endpoint,
            deadline: Duration::from_secs(30),
            base_backoff: Duration::from_millis(25),
            max_backoff: Duration::from_secs(1),
            backoff_seed: 1,
            retry_budget: 10.0,
            refund: 0.1,
        }
    }
}

/// Why a call ultimately failed.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure with no retry possible (deadline or budget
    /// already spent reporting happens via the other variants; this is
    /// for non-retryable setup errors such as an unresolvable address).
    Io(std::io::Error),
    /// The server's reply was not a valid response frame.
    Protocol(String),
    /// The server answered with a non-retryable typed error.
    Server {
        /// The stable wire error code (e.g. `bad_request`).
        code: String,
        /// The human-readable message.
        message: String,
    },
    /// The per-call deadline expired before a successful reply.
    DeadlineExceeded {
        /// Attempts made before giving up.
        attempts: u64,
        /// The last transient failure observed.
        last_error: String,
    },
    /// The retry-token bucket ran dry (systemic overload guard).
    BudgetExhausted {
        /// Attempts made before giving up.
        attempts: u64,
        /// The last transient failure observed.
        last_error: String,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o error: {e}"),
            ClientError::Protocol(m) => write!(f, "protocol error: {m}"),
            ClientError::Server { code, message } => {
                write!(f, "server error ({code}): {message}")
            }
            ClientError::DeadlineExceeded {
                attempts,
                last_error,
            } => write!(
                f,
                "deadline exceeded after {attempts} attempt(s); last error: {last_error}"
            ),
            ClientError::BudgetExhausted {
                attempts,
                last_error,
            } => write!(
                f,
                "retry budget exhausted after {attempts} attempt(s); last error: {last_error}"
            ),
        }
    }
}

impl std::error::Error for ClientError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClientError::Io(e) => Some(e),
            _ => None,
        }
    }
}

/// SplitMix64 finalizer — the same generator the chaos engine uses, kept
/// local so the client builds without the `chaos` feature.
#[must_use]
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// One step of decorrelated-jitter backoff: advances `state` and returns
/// a sleep uniformly drawn from `[base_ms, max(base_ms, prev_ms × 3)]`,
/// clamped to `cap_ms`. Pure and seedable, so schedules are testable.
#[must_use]
pub fn decorrelated_jitter(state: &mut u64, prev_ms: u64, base_ms: u64, cap_ms: u64) -> u64 {
    *state = splitmix64(*state);
    let hi = prev_ms.saturating_mul(3).max(base_ms);
    let span = hi - base_ms + 1;
    (base_ms + *state % span).min(cap_ms)
}

/// How one attempt ended, before retry policy is applied.
enum Attempt {
    /// The `result` payload of an `ok` frame.
    Ok(Json),
    /// Retryable: transport error, torn frame, `overloaded`,
    /// `shutting_down`. `floor_ms` carries the server's retry hint.
    Transient {
        description: String,
        floor_ms: u64,
        /// Whether the connection must be discarded before retrying.
        reconnect: bool,
    },
    /// A typed server error that retrying cannot fix.
    Fatal { code: String, message: String },
}

/// Classifies one reply line. Pure, so the retry policy is unit-testable
/// without sockets.
fn classify_reply(line: &str) -> Attempt {
    let Ok(frame) = json::parse(line) else {
        return Attempt::Transient {
            description: format!("torn or malformed reply frame: {:?}", truncated(line)),
            floor_ms: 0,
            reconnect: true,
        };
    };
    if frame.get("ok").and_then(Json::as_bool) == Some(true) {
        return Attempt::Ok(frame.get("result").cloned().unwrap_or(Json::Null));
    }
    let error = frame.get("error");
    let code = error
        .and_then(|e| e.get("code"))
        .and_then(Json::as_str)
        .unwrap_or("unknown")
        .to_string();
    let message = error
        .and_then(|e| e.get("message"))
        .and_then(Json::as_str)
        .unwrap_or("no message")
        .to_string();
    match code.as_str() {
        "overloaded" => Attempt::Transient {
            description: format!("server overloaded: {message}"),
            floor_ms: error
                .and_then(|e| e.get("retry_after_ms"))
                .and_then(Json::as_u64)
                .unwrap_or(0),
            // Admission-level sheds keep the connection open; connection
            // farewells close it, which the next write surfaces as an
            // I/O error. Either way reusing the stream is safe.
            reconnect: false,
        },
        "shutting_down" => Attempt::Transient {
            description: format!("server draining: {message}"),
            floor_ms: 0,
            reconnect: true,
        },
        // Deliberately non-retryable: the deadline is the *caller's*
        // budget, and the work was cancelled because that budget ran out.
        // Re-submitting the same request with the same deadline would
        // just burn a second deadline's worth of server compute to reach
        // the same outcome — the caller must decide to raise the deadline
        // (or drop the request), not the retry loop.
        "deadline_exceeded" => Attempt::Fatal { code, message },
        _ => Attempt::Fatal { code, message },
    }
}

fn truncated(line: &str) -> String {
    const MAX: usize = 80;
    if line.len() <= MAX {
        line.to_string()
    } else {
        let mut end = MAX;
        while !line.is_char_boundary(end) {
            end -= 1;
        }
        format!("{}…", &line[..end])
    }
}

/// Either transport, unified behind `Read + Write`.
enum Conn {
    Tcp(TcpStream),
    Unix(UnixStream),
}

impl Conn {
    fn set_read_timeout(&self, timeout: Duration) -> std::io::Result<()> {
        match self {
            Conn::Tcp(s) => s.set_read_timeout(Some(timeout)),
            Conn::Unix(s) => s.set_read_timeout(Some(timeout)),
        }
    }
}

impl Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.read(buf),
            Conn::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.write(buf),
            Conn::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Conn::Tcp(s) => s.flush(),
            Conn::Unix(s) => s.flush(),
        }
    }
}

/// Retry/backoff state behind the client's mutex: the persistent
/// connection, jitter generator, and token bucket. Calls serialise on
/// this lock — one frame in flight per client, matching the server's
/// one-frame-at-a-time connection loop.
struct ClientState {
    conn: Option<BufReader<Conn>>,
    rng: u64,
    prev_backoff_ms: u64,
    budget: f64,
}

/// A retrying NDJSON client; see the [module docs](self) for the retry
/// semantics. Cloneless and `Sync` — share it behind an `Arc` if needed;
/// calls serialise internally.
pub struct Client {
    config: ClientConfig,
    state: Mutex<ClientState>,
    attempts: AtomicU64,
    retries: AtomicU64,
}

impl Client {
    /// Creates a client; no connection is made until the first call.
    #[must_use]
    pub fn new(config: ClientConfig) -> Client {
        let rng = splitmix64(config.backoff_seed);
        let budget = config.retry_budget;
        Client {
            config,
            state: Mutex::new(ClientState {
                conn: None,
                rng,
                prev_backoff_ms: 0,
                budget,
            }),
            attempts: AtomicU64::new(0),
            retries: AtomicU64::new(0),
        }
    }

    /// Total attempts across every call (first tries + retries).
    #[must_use]
    pub fn attempts(&self) -> u64 {
        self.attempts.load(Ordering::Relaxed)
    }

    /// Total retries across every call.
    #[must_use]
    pub fn retries(&self) -> u64 {
        self.retries.load(Ordering::Relaxed)
    }

    /// Sends one request frame (a JSON object, no trailing newline) and
    /// returns the `result` payload of the eventual `ok` reply.
    ///
    /// # Errors
    ///
    /// [`ClientError::Server`] for non-retryable typed errors,
    /// [`ClientError::DeadlineExceeded`] / [`ClientError::BudgetExhausted`]
    /// when the retry guards trip, [`ClientError::Protocol`] for replies
    /// that are not response frames.
    pub fn call(&self, request: &str) -> Result<Json, ClientError> {
        if request.contains('\n') {
            return Err(ClientError::Protocol(
                "request frame must not contain a newline".into(),
            ));
        }
        let deadline = Instant::now() + self.config.deadline;
        let mut state = match self.state.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        let mut call_attempts = 0u64;
        loop {
            call_attempts += 1;
            self.attempts.fetch_add(1, Ordering::Relaxed);
            let attempt = self.attempt_once(&mut state, request, deadline);
            let (description, floor_ms, reconnect) = match attempt {
                Attempt::Ok(result) => {
                    state.budget =
                        (state.budget + self.config.refund).min(self.config.retry_budget);
                    state.prev_backoff_ms = 0;
                    return Ok(result);
                }
                Attempt::Fatal { code, message } => {
                    return Err(ClientError::Server { code, message });
                }
                Attempt::Transient {
                    description,
                    floor_ms,
                    reconnect,
                } => (description, floor_ms, reconnect),
            };
            if reconnect {
                state.conn = None;
            }
            state.budget -= 1.0;
            if state.budget < 0.0 {
                state.budget = 0.0;
                return Err(ClientError::BudgetExhausted {
                    attempts: call_attempts,
                    last_error: description,
                });
            }
            let base = u64::try_from(self.config.base_backoff.as_millis()).unwrap_or(u64::MAX);
            let cap = u64::try_from(self.config.max_backoff.as_millis()).unwrap_or(u64::MAX);
            let prev_ms = state.prev_backoff_ms;
            let mut sleep_ms = decorrelated_jitter(&mut state.rng, prev_ms, base.max(1), cap);
            sleep_ms = sleep_ms.max(floor_ms);
            state.prev_backoff_ms = sleep_ms;
            let sleep = Duration::from_millis(sleep_ms);
            if Instant::now() + sleep >= deadline {
                return Err(ClientError::DeadlineExceeded {
                    attempts: call_attempts,
                    last_error: description,
                });
            }
            self.retries.fetch_add(1, Ordering::Relaxed);
            std::thread::sleep(sleep);
        }
    }

    /// One connect → write → read → classify cycle against the deadline.
    fn attempt_once(&self, state: &mut ClientState, request: &str, deadline: Instant) -> Attempt {
        let remaining = deadline.saturating_duration_since(Instant::now());
        if remaining.is_zero() {
            return Attempt::Transient {
                description: "deadline expired before the attempt started".into(),
                floor_ms: 0,
                reconnect: false,
            };
        }
        if state.conn.is_none() {
            match self.connect(remaining) {
                Ok(conn) => state.conn = Some(BufReader::new(conn)),
                Err(e) => {
                    return Attempt::Transient {
                        description: format!("connect failed: {e}"),
                        floor_ms: 0,
                        reconnect: true,
                    };
                }
            }
        }
        let Some(reader) = state.conn.as_mut() else {
            return Attempt::Transient {
                description: "no connection".into(),
                floor_ms: 0,
                reconnect: true,
            };
        };
        // Cap the read wait at the remaining deadline so a stalled server
        // cannot hold the call past its budget.
        let timeout = deadline
            .saturating_duration_since(Instant::now())
            .max(Duration::from_millis(1));
        if let Err(e) = reader.get_ref().set_read_timeout(timeout) {
            return Attempt::Transient {
                description: format!("set_read_timeout failed: {e}"),
                floor_ms: 0,
                reconnect: true,
            };
        }
        let stream = reader.get_mut();
        if let Err(e) = stream
            .write_all(request.as_bytes())
            .and_then(|()| stream.write_all(b"\n"))
            .and_then(|()| stream.flush())
        {
            return Attempt::Transient {
                description: format!("write failed: {e}"),
                floor_ms: 0,
                reconnect: true,
            };
        }
        let mut line = String::new();
        match reader.read_line(&mut line) {
            Ok(0) => Attempt::Transient {
                description: "connection closed before a reply arrived".into(),
                floor_ms: 0,
                reconnect: true,
            },
            Ok(_) => {
                if line.ends_with('\n') {
                    classify_reply(line.trim_end_matches('\n'))
                } else {
                    // A reply with no terminator is a torn frame: the
                    // server died mid-write. Never trust partial JSON.
                    Attempt::Transient {
                        description: format!("torn reply frame: {:?}", truncated(&line)),
                        floor_ms: 0,
                        reconnect: true,
                    }
                }
            }
            Err(e) => Attempt::Transient {
                description: format!("read failed: {e}"),
                floor_ms: 0,
                reconnect: true,
            },
        }
    }

    fn connect(&self, remaining: Duration) -> std::io::Result<Conn> {
        match &self.config.endpoint {
            Endpoint::Tcp(addr) => {
                let mut last = std::io::Error::new(
                    std::io::ErrorKind::InvalidInput,
                    format!("address resolved to nothing: {addr}"),
                );
                for resolved in addr.to_socket_addrs()? {
                    match TcpStream::connect_timeout(&resolved, remaining) {
                        Ok(stream) => {
                            let _ = stream.set_nodelay(true);
                            return Ok(Conn::Tcp(stream));
                        }
                        Err(e) => last = e,
                    }
                }
                Err(last)
            }
            Endpoint::Unix(path) => UnixStream::connect(path).map(Conn::Unix),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jitter_is_deterministic_per_seed_and_bounded() {
        let mut a = splitmix64(7);
        let mut b = splitmix64(7);
        let mut prev = 0;
        for _ in 0..64 {
            let x = decorrelated_jitter(&mut a, prev, 25, 1000);
            let y = decorrelated_jitter(&mut b, prev, 25, 1000);
            assert_eq!(x, y);
            assert!((25..=1000).contains(&x), "sleep {x} out of bounds");
            prev = x;
        }
        // A different seed diverges somewhere in the schedule.
        let mut c = splitmix64(8);
        let schedule_a: Vec<u64> = {
            let mut s = splitmix64(7);
            (0..16)
                .map(|_| decorrelated_jitter(&mut s, 100, 25, 1000))
                .collect()
        };
        let schedule_c: Vec<u64> = (0..16)
            .map(|_| decorrelated_jitter(&mut c, 100, 25, 1000))
            .collect();
        assert_ne!(schedule_a, schedule_c);
    }

    #[test]
    fn jitter_grows_from_prev_and_respects_cap() {
        let mut s = splitmix64(3);
        // With prev = 0 the draw collapses to exactly base.
        assert_eq!(decorrelated_jitter(&mut s, 0, 25, 1000), 25);
        // With a huge prev the cap clamps.
        for _ in 0..32 {
            let x = decorrelated_jitter(&mut s, u64::MAX / 4, 25, 1000);
            assert!(x <= 1000);
        }
    }

    #[test]
    fn classify_routes_ok_overloaded_and_fatal() {
        match classify_reply(r#"{"ok":true,"kind":"stats","result":{"x":1}}"#) {
            Attempt::Ok(result) => {
                assert_eq!(result.get("x").and_then(Json::as_u64), Some(1));
            }
            _ => panic!("expected Ok"),
        }
        match classify_reply(
            r#"{"ok":false,"kind":"analyze","error":{"code":"overloaded","message":"m","retry_after_ms":120}}"#,
        ) {
            Attempt::Transient {
                floor_ms,
                reconnect,
                ..
            } => {
                assert_eq!(floor_ms, 120);
                assert!(!reconnect);
            }
            _ => panic!("expected Transient"),
        }
        match classify_reply(r#"{"ok":false,"error":{"code":"shutting_down","message":"m"}}"#) {
            Attempt::Transient { reconnect, .. } => assert!(reconnect),
            _ => panic!("expected Transient"),
        }
        match classify_reply(r#"{"ok":false,"error":{"code":"bad_request","message":"nope"}}"#) {
            Attempt::Fatal { code, .. } => assert_eq!(code, "bad_request"),
            _ => panic!("expected Fatal"),
        }
        // A blown deadline is the caller's budget running out — retrying
        // the identical request would only spend it again.
        match classify_reply(
            r#"{"ok":false,"error":{"code":"deadline_exceeded","message":"m","after_ms":51}}"#,
        ) {
            Attempt::Fatal { code, .. } => assert_eq!(code, "deadline_exceeded"),
            _ => panic!("deadline_exceeded must be fatal, not retried"),
        }
        match classify_reply(r#"{"ok":false,"error":{"code":"#) {
            Attempt::Transient { reconnect, .. } => assert!(reconnect),
            _ => panic!("torn frames must be transient"),
        }
    }

    #[test]
    fn budget_exhausts_against_a_dead_endpoint() {
        // Port 1 on localhost refuses instantly; the budget (not the
        // deadline) should end the call after budget+1 attempts.
        let mut config = ClientConfig::new(Endpoint::Tcp("127.0.0.1:1".into()));
        config.retry_budget = 2.0;
        config.base_backoff = Duration::from_millis(1);
        config.max_backoff = Duration::from_millis(2);
        config.deadline = Duration::from_secs(10);
        let client = Client::new(config);
        match client.call(r#"{"kind":"stats"}"#) {
            Err(ClientError::BudgetExhausted { attempts, .. }) => {
                assert_eq!(attempts, 3, "2 tokens -> 3 attempts");
            }
            other => panic!("expected BudgetExhausted, got {other:?}"),
        }
        assert_eq!(client.attempts(), 3);
        assert_eq!(client.retries(), 2);
    }

    #[test]
    fn embedded_newlines_are_rejected_up_front() {
        let client = Client::new(ClientConfig::new(Endpoint::Tcp("127.0.0.1:1".into())));
        assert!(matches!(
            client.call("{}\n{}"),
            Err(ClientError::Protocol(_))
        ));
    }
}
