//! A small, dependency-free JSON tree, parser, and encoder.
//!
//! The workspace's offline dependency policy admits only `rand`,
//! `proptest`, and `criterion`, so the service protocol cannot lean on
//! `serde`. This module implements the subset of JSON the protocol needs —
//! which is all of RFC 8259 except that
//!
//! * numbers are `f64` (like JavaScript; integers are exact up to 2⁵³),
//! * non-finite numbers encode as `null` (JSON has no NaN/Infinity), and
//! * objects preserve insertion order and keep duplicate keys out by
//!   construction on the encode side; on the parse side the *last*
//!   duplicate wins, matching common parsers.
//!
//! Both the server and the CLI's `--json` mode encode through this module,
//! so the two surfaces emit byte-identical schemas.

use std::fmt;

/// Maximum nesting depth accepted by [`parse`]; deeper input is rejected
/// rather than risking stack exhaustion on adversarial frames.
pub const MAX_DEPTH: usize = 64;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion-ordered key/value pairs.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on an object (first match); `None` on other variants.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The numeric payload as a non-negative integer, if it is one exactly.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            Json::Num(v) if *v >= 0.0 && v.fract() == 0.0 && *v <= 9_007_199_254_740_992.0 => {
                Some(*v as u64)
            }
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Builds an object from key/value pairs.
    #[must_use]
    pub fn obj<I>(members: I) -> Json
    where
        I: IntoIterator<Item = (&'static str, Json)>,
    {
        Json::Obj(
            members
                .into_iter()
                .map(|(k, v)| (k.to_owned(), v))
                .collect(),
        )
    }

    /// Appends a member to an object; no-op on other variants.
    pub fn push(&mut self, key: &str, value: Json) {
        if let Json::Obj(members) = self {
            members.push((key.to_owned(), value));
        }
    }

    /// Encodes this value as compact JSON text (no whitespace).
    #[must_use]
    pub fn encode(&self) -> String {
        let mut out = String::new();
        self.encode_into(&mut out);
        out
    }

    /// Encodes this value into `out`.
    pub fn encode_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(v) => encode_number(*v, out),
            Json::Str(s) => encode_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.encode_into(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    encode_string(k, out);
                    out.push(':');
                    v.encode_into(out);
                }
                out.push('}');
            }
        }
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Num(v)
    }
}

impl From<u64> for Json {
    fn from(v: u64) -> Json {
        // Counters beyond 2^53 lose precision; the protocol's counters
        // (requests, cache bytes, pattern budgets) stay far below that.
        #[allow(clippy::cast_precision_loss)]
        Json::Num(v as f64)
    }
}

impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::from(v as u64)
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}

impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_owned())
    }
}

impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}

fn encode_number(v: f64, out: &mut String) {
    use fmt::Write as _;
    if !v.is_finite() {
        out.push_str("null");
        return;
    }
    // Integers render without a fractional part; everything else uses
    // Rust's shortest round-trip representation, which is valid JSON.
    #[allow(clippy::cast_possible_truncation)]
    if v.fract() == 0.0 && v.abs() <= 9_007_199_254_740_992.0 {
        let _ = write!(out, "{}", v as i64);
    } else {
        let _ = write!(out, "{v}");
    }
}

fn encode_string(s: &str, out: &mut String) {
    use fmt::Write as _;
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure: byte offset plus message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure in the input.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parses one JSON document; trailing whitespace is allowed, trailing
/// content is an error.
///
/// # Errors
///
/// Returns a [`JsonError`] naming the byte offset for syntax errors, depth
/// beyond [`MAX_DEPTH`], or trailing garbage.
pub fn parse(text: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        text,
        pos: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing content after JSON value"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    text: &'a str,
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.to_owned(),
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8, what: &str) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(what))
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.eat(b'[', "expected `[`")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.eat(b'{', "expected `{`")?;
        let mut members: Vec<(String, Json)> = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':', "expected `:` after object key")?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            // Last duplicate wins.
            if let Some(slot) = members.iter_mut().find(|(k, _)| *k == key) {
                slot.1 = value;
            } else {
                members.push((key, value));
            }
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"', "expected string")?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: copy a run of plain characters at once.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                // Always a char boundary: the loop stops only on ASCII
                // delimiters and never inside a UTF-8 sequence.
                out.push_str(&self.text[start..self.pos]);
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    self.escape(&mut out)?;
                }
                Some(_) => return Err(self.err("unescaped control character in string")),
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn escape(&mut self, out: &mut String) -> Result<(), JsonError> {
        let Some(b) = self.peek() else {
            return Err(self.err("unterminated escape"));
        };
        self.pos += 1;
        match b {
            b'"' => out.push('"'),
            b'\\' => out.push('\\'),
            b'/' => out.push('/'),
            b'b' => out.push('\u{08}'),
            b'f' => out.push('\u{0C}'),
            b'n' => out.push('\n'),
            b'r' => out.push('\r'),
            b't' => out.push('\t'),
            b'u' => {
                let hi = self.hex4()?;
                let code = if (0xD800..0xDC00).contains(&hi) {
                    // Surrogate pair: require \uXXXX low half.
                    if self.peek() == Some(b'\\') {
                        self.pos += 1;
                        self.eat(b'u', "expected low surrogate escape")?;
                        let lo = self.hex4()?;
                        if !(0xDC00..0xE000).contains(&lo) {
                            return Err(self.err("invalid low surrogate"));
                        }
                        0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                    } else {
                        return Err(self.err("lone high surrogate"));
                    }
                } else if (0xDC00..0xE000).contains(&hi) {
                    return Err(self.err("lone low surrogate"));
                } else {
                    hi
                };
                match char::from_u32(code) {
                    Some(c) => out.push(c),
                    None => return Err(self.err("invalid unicode escape")),
                }
            }
            _ => return Err(self.err("invalid escape character")),
        }
        Ok(())
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let Some(b) = self.peek() else {
                return Err(self.err("truncated \\u escape"));
            };
            let d = match b {
                b'0'..=b'9' => u32::from(b - b'0'),
                b'a'..=b'f' => u32::from(b - b'a') + 10,
                b'A'..=b'F' => u32::from(b - b'A') + 10,
                _ => return Err(self.err("non-hex digit in \\u escape")),
            };
            v = v * 16 + d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let first_digit = self.pos;
        let int_digits = self.digits();
        if int_digits == 0 {
            return Err(self.err("expected digits in number"));
        }
        if int_digits > 1 && self.bytes[first_digit] == b'0' {
            return Err(self.err("leading zero in number"));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if self.digits() == 0 {
                return Err(self.err("expected digits after decimal point"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if self.digits() == 0 {
                return Err(self.err("expected digits in exponent"));
            }
        }
        let span = &self.text[start..self.pos];
        match span.parse::<f64>() {
            // Overflowing literals (1e999) become infinite; reject rather
            // than smuggle non-finite values into the protocol.
            Ok(v) if v.is_finite() => Ok(Json::Num(v)),
            _ => Err(self.err("number out of range")),
        }
    }

    fn digits(&mut self) -> usize {
        let start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        self.pos - start
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars() {
        for text in [
            "null", "true", "false", "0", "-1", "3.5", "1e-3", "\"hi\"", "[]", "{}",
        ] {
            let v = parse(text).unwrap();
            let enc = v.encode();
            assert_eq!(parse(&enc).unwrap(), v, "{text} -> {enc}");
        }
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"a":[1,2,{"b":null}],"c":"x\ny","d":true}"#).unwrap();
        assert_eq!(v.get("d"), Some(&Json::Bool(true)));
        assert_eq!(v.get("c").and_then(Json::as_str), Some("x\ny"));
        assert_eq!(
            v.get("a").and_then(Json::as_array).map(<[Json]>::len),
            Some(3)
        );
    }

    #[test]
    fn encodes_numbers_deterministically() {
        assert_eq!(Json::Num(0.05).encode(), "0.05");
        assert_eq!(Json::Num(3.0).encode(), "3");
        assert_eq!(Json::Num(-0.0).encode(), "0");
        assert_eq!(Json::Num(f64::NAN).encode(), "null");
        assert_eq!(Json::Num(f64::INFINITY).encode(), "null");
        assert_eq!(Json::from(18_446_744_073_709u64).encode(), "18446744073709");
    }

    #[test]
    fn escapes_and_unescapes_strings() {
        let s = "quote\" slash\\ ctrl\u{01} tab\t unicode\u{1F600}";
        let enc = Json::Str(s.to_owned()).encode();
        assert_eq!(parse(&enc).unwrap().as_str(), Some(s));
        assert_eq!(parse(r#""\ud83d\ude00""#).unwrap().as_str(), Some("😀"));
    }

    #[test]
    fn rejects_malformed_input() {
        for text in [
            "",
            "{",
            "[1,",
            "nul",
            "{\"a\"}",
            "{\"a\":}",
            "\"abc",
            "01",
            "1.",
            ".5",
            "+1",
            "1e",
            "--1",
            "[1]]",
            "{\"a\":1} x",
            "\"\\q\"",
            "\"\\ud800\"",
            "1e999",
            "nan",
        ] {
            assert!(parse(text).is_err(), "should reject {text:?}");
        }
    }

    #[test]
    fn depth_limit_is_enforced() {
        let deep = "[".repeat(MAX_DEPTH + 2) + &"]".repeat(MAX_DEPTH + 2);
        assert!(parse(&deep).is_err());
        let ok = "[".repeat(8) + &"]".repeat(8);
        assert!(parse(&ok).is_ok());
    }

    #[test]
    fn duplicate_keys_last_wins() {
        let v = parse(r#"{"a":1,"a":2}"#).unwrap();
        assert_eq!(v.get("a").and_then(Json::as_f64), Some(2.0));
    }

    #[test]
    fn u64_accessor_is_exact() {
        assert_eq!(parse("7").unwrap().as_u64(), Some(7));
        assert_eq!(parse("7.5").unwrap().as_u64(), None);
        assert_eq!(parse("-7").unwrap().as_u64(), None);
    }
}
