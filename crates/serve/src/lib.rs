//! `relogic-serve` — a concurrent reliability-analysis service.
//!
//! Long-running analysis pipelines re-analyse the same circuits over and
//! over (per-ε sweeps, regression dashboards, design-space exploration).
//! The expensive state in this codebase — parsed circuits, BDD-backed
//! weight vectors (§4, Table 2 of the DATE'07 paper), and observability
//! matrices (§3) — is ε-independent, so a daemon that compiles a netlist
//! once and answers many queries against the cached artifact amortises
//! nearly all of the cost.
//!
//! The crate is std-only and layers:
//!
//! - [`json`] — a hand-rolled JSON value, encoder, and parser shared with
//!   the CLI's `--json` output.
//! - [`proto`] — the newline-delimited request/response wire protocol and
//!   typed error codes.
//! - [`cache`] — the content-addressed compiled-circuit artifact cache
//!   with LRU eviction under a byte budget.
//! - [`api`] — result-object builders shared by the daemon and CLI.
//! - [`stats`] — request counters and a lock-free latency histogram.
//! - [`service`] — transport-independent request execution with
//!   per-request timeouts.
//! - [`server`] — TCP + Unix-socket listeners, a bounded connection
//!   worker pool, and graceful drain.
//! - [`signal`] — SIGTERM/SIGINT → drain flag, with no libc crate.
//! - [`client`] — a retrying std-only client with deadline-capped,
//!   seeded decorrelated-jitter backoff and retry-budget accounting.
//!
//! With the `chaos` feature, [`relogic_sim::chaos`] is re-exported as
//! [`chaos`] and the daemon accepts a fault-injection config that
//! deterministically perturbs the pool, connection I/O, and the cache.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod api;
pub mod cache;
pub mod client;
pub mod json;
pub mod proto;
pub mod server;
pub mod service;
pub mod signal;
pub mod stats;

#[cfg(feature = "chaos")]
pub use relogic_sim::chaos;

pub use cache::{ArtifactCache, CacheOutcome};
pub use client::{Client, ClientConfig, ClientError, Endpoint};
pub use json::Json;
pub use proto::{Request, RequestLimits, Response, ServeError};
pub use server::{Server, ServerConfig};
pub use service::{Service, ServiceConfig};
