//! Wire protocol: newline-delimited JSON requests and responses.
//!
//! One request per line, one response line per request, in order. Every
//! response is an object with `"ok"` (boolean), the request's `"id"` echoed
//! back when one was supplied, `"kind"` when the request kind could be
//! determined, and either `"result"` or `"error"`:
//!
//! ```text
//! → {"kind":"analyze","netlist":"INPUT(a)\n...","format":"bench","eps":[0.05,0.1],"id":1}
//! ← {"id":1,"ok":true,"kind":"analyze","result":{...}}
//! → {"kind":"nonsense"}
//! ← {"ok":false,"kind":null,"error":{"code":"bad_request","message":"unknown request kind `nonsense`"}}
//! ```
//!
//! Error payloads always carry a stable machine-readable `"code"` (see
//! [`ServeError::code`]) mapped from the workspace's typed error
//! hierarchies ([`RelogicError`], [`SimError`],
//! [`relogic_netlist::NetlistError`]) plus a human-readable `"message"`.

use crate::json::{self, Json};
use relogic::{RelogicError, SinglePassOptions};
use relogic_estimate::CriticalMetric;
use relogic_netlist::{Circuit, NetlistError};
use relogic_sim::SimError;
use std::fmt;

/// Default uniform gate failure probability when a request omits `eps`,
/// matching the CLI default.
pub const DEFAULT_EPS: f64 = 0.05;

/// Default Monte Carlo pattern budget, matching the CLI default.
pub const DEFAULT_PATTERNS: u64 = 65_536;

/// Default gate-count ratio ceiling for `harden` requests: up to 2× the
/// unprotected circuit's area.
pub const DEFAULT_AREA_BUDGET: f64 = 2.0;

/// Default δ threshold a `critical_eps` request bisects for.
pub const DEFAULT_CRITICAL_THRESHOLD: f64 = 0.1;

/// Netlist text format of a request payload.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum NetlistFormat {
    /// ISCAS-85 bench.
    Bench,
    /// Berkeley BLIF.
    Blif,
    /// Structural Verilog.
    Verilog,
}

impl NetlistFormat {
    /// The wire tag (`"bench"`, `"blif"`, `"verilog"`).
    #[must_use]
    pub fn tag(self) -> &'static str {
        match self {
            NetlistFormat::Bench => "bench",
            NetlistFormat::Blif => "blif",
            NetlistFormat::Verilog => "verilog",
        }
    }

    /// Parses a wire tag.
    #[must_use]
    pub fn from_tag(tag: &str) -> Option<NetlistFormat> {
        match tag {
            "bench" => Some(NetlistFormat::Bench),
            "blif" => Some(NetlistFormat::Blif),
            "verilog" | "v" => Some(NetlistFormat::Verilog),
            _ => None,
        }
    }

    /// Parses netlist text in this format.
    ///
    /// # Errors
    ///
    /// Propagates the format parser's [`NetlistError`].
    pub fn parse_netlist(self, text: &str) -> Result<Circuit, NetlistError> {
        match self {
            NetlistFormat::Bench => relogic_netlist::bench::parse(text),
            NetlistFormat::Blif => relogic_netlist::blif::parse(text),
            NetlistFormat::Verilog => relogic_netlist::verilog::parse(text),
        }
    }
}

/// Which statistics backend computes weight vectors and observabilities.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BackendSpec {
    /// Exact symbolic (BDD) backend.
    Bdd,
    /// Random-pattern sampling backend.
    Sim {
        /// Pattern budget for the sampling backend.
        patterns: u64,
        /// RNG seed for the sampling backend.
        seed: u64,
    },
}

impl BackendSpec {
    /// The `relogic` backend value.
    #[must_use]
    pub fn backend(self) -> relogic::Backend {
        match self {
            BackendSpec::Bdd => relogic::Backend::Bdd,
            BackendSpec::Sim { patterns, seed } => relogic::Backend::Simulation { patterns, seed },
        }
    }

    /// A stable string mixed into cache keys: artifacts computed by
    /// different backends must never collide.
    #[must_use]
    pub fn cache_tag(self) -> String {
        match self {
            BackendSpec::Bdd => "bdd".to_owned(),
            BackendSpec::Sim { patterns, seed } => format!("sim:{patterns}:{seed}"),
        }
    }
}

/// The circuit-carrying part shared by every analysis request.
#[derive(Clone, Debug)]
pub struct CircuitPayload {
    /// Netlist text.
    pub netlist: String,
    /// Its format.
    pub format: NetlistFormat,
    /// Statistics backend for weights/observability.
    pub backend: BackendSpec,
}

/// Options for an `analyze` request.
#[derive(Clone, Debug)]
pub struct AnalyzeRequestOptions {
    /// Engine options (correlations, partner cap, strictness …).
    pub single_pass: SinglePassOptions,
    /// Include clamp/fallback diagnostics in the result.
    pub diagnostics: bool,
    /// Include per-node error probabilities in each result point.
    pub per_node: bool,
}

/// A parsed protocol request.
#[derive(Clone, Debug)]
pub enum Request {
    /// Single-pass δ per output at one or many ε points (§4/§4.1).
    Analyze {
        /// Circuit payload.
        circuit: CircuitPayload,
        /// ε grid (uniform per gate).
        eps: Vec<f64>,
        /// Engine and reporting options.
        options: AnalyzeRequestOptions,
        /// Cooperative deadline in milliseconds (0 = none requested).
        deadline_ms: u64,
    },
    /// Observability closed form (§3) at one or many ε points.
    Observability {
        /// Circuit payload.
        circuit: CircuitPayload,
        /// ε grid (uniform per gate).
        eps: Vec<f64>,
        /// Include per-gate any-output observabilities.
        per_gate: bool,
        /// Cooperative deadline in milliseconds (0 = none requested).
        deadline_ms: u64,
    },
    /// Deterministic chunk-seeded Monte Carlo reference run.
    MonteCarlo {
        /// Circuit payload.
        circuit: CircuitPayload,
        /// Uniform gate failure probability.
        eps: f64,
        /// Pattern budget.
        patterns: u64,
        /// RNG seed (same seed ⇒ same estimate, any thread count).
        seed: u64,
        /// Worker threads (0 = auto).
        threads: usize,
        /// Cooperative deadline in milliseconds (0 = none requested).
        deadline_ms: u64,
    },
    /// Tiered reliability estimate: exact BDD under a live-node budget,
    /// falling back to the propagation estimator, refined by Monte Carlo
    /// when the estimate saturates (see `relogic-estimate`).
    Estimate {
        /// Circuit payload.
        circuit: CircuitPayload,
        /// Uniform gate failure probability.
        eps: f64,
        /// Live-node budget for the exact tier (0 disables it).
        bdd_node_budget: usize,
        /// Pattern budget for the Monte Carlo refinement tier.
        patterns: u64,
        /// RNG seed for the Monte Carlo refinement tier.
        seed: u64,
        /// Cooperative deadline in milliseconds (0 = none requested).
        deadline_ms: u64,
    },
    /// Selective-TMR hardening sweep: reliability-per-area Pareto front
    /// under a gate-count budget.
    Harden {
        /// Circuit payload.
        circuit: CircuitPayload,
        /// Uniform gate failure probability.
        eps: f64,
        /// Maximum gate-count ratio versus the unprotected circuit.
        area_budget: f64,
        /// Cap on evaluated protection prefixes (0 = no cap).
        max_steps: usize,
        /// Cooperative deadline in milliseconds (0 = none requested).
        deadline_ms: u64,
    },
    /// Deterministic bisection on ε for where output error δ crosses a
    /// threshold, evaluated on the compiled sweep tape.
    CriticalEps {
        /// Circuit payload.
        circuit: CircuitPayload,
        /// δ threshold in (0, ½).
        threshold: f64,
        /// How δ is summarized across outputs.
        metric: CriticalMetric,
        /// Bisection step cap (0 = the library default).
        max_steps: usize,
        /// Cooperative deadline in milliseconds (0 = none requested).
        deadline_ms: u64,
    },
    /// Service counters: requests, cache, latency percentiles.
    Stats,
    /// Readiness probe: drain state, in-flight gauge, queue depth, shed
    /// count. Always answered inline — never queued, timed out, or
    /// admission-controlled — so load balancers get an honest signal even
    /// when the service is saturated.
    Health,
}

impl Request {
    /// The wire tag of this request kind.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            Request::Analyze { .. } => "analyze",
            Request::Observability { .. } => "observability",
            Request::MonteCarlo { .. } => "monte_carlo",
            Request::Estimate { .. } => "estimate",
            Request::Harden { .. } => "harden",
            Request::CriticalEps { .. } => "critical_eps",
            Request::Stats => "stats",
            Request::Health => "health",
        }
    }

    /// Whether this request counts against the in-flight admission limit.
    /// Only analysis work does; `stats` and `health` stay answerable under
    /// overload precisely so operators can observe the overload.
    #[must_use]
    pub fn needs_admission(&self) -> bool {
        !matches!(self, Request::Stats | Request::Health)
    }

    /// The client-requested cooperative deadline, when one was supplied.
    /// `stats`/`health` are answered inline and never carry one.
    #[must_use]
    pub fn deadline_ms(&self) -> Option<u64> {
        let ms = match self {
            Request::Analyze { deadline_ms, .. }
            | Request::Observability { deadline_ms, .. }
            | Request::MonteCarlo { deadline_ms, .. }
            | Request::Estimate { deadline_ms, .. }
            | Request::Harden { deadline_ms, .. }
            | Request::CriticalEps { deadline_ms, .. } => *deadline_ms,
            Request::Stats | Request::Health => 0,
        };
        (ms > 0).then_some(ms)
    }
}

/// Validation ceilings applied while parsing requests.
#[derive(Clone, Copy, Debug)]
pub struct RequestLimits {
    /// Maximum ε points per analyze/observability request.
    pub max_eps_points: usize,
    /// Maximum Monte Carlo pattern budget per request.
    pub max_patterns: u64,
    /// Maximum worker threads a request may demand.
    pub max_threads: usize,
}

impl Default for RequestLimits {
    fn default() -> Self {
        RequestLimits {
            max_eps_points: 4096,
            max_patterns: 1 << 32,
            max_threads: 1024,
        }
    }
}

/// Typed service errors; each variant maps to a stable wire code.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum ServeError {
    /// The frame is not valid JSON, not an object, names an unknown kind,
    /// or carries a malformed/out-of-limit field. Code `bad_request`.
    BadRequest(String),
    /// The frame exceeded the configured size limit. Code
    /// `request_too_large`.
    TooLarge {
        /// The configured limit in bytes.
        limit: usize,
    },
    /// The netlist failed to parse or validate. Code `netlist_error`.
    Netlist {
        /// The parser/validator message.
        message: String,
        /// 1-based line number for syntax errors.
        line: Option<u64>,
    },
    /// The analytical engine rejected the request. Code `analysis_error`.
    Analysis(RelogicError),
    /// The Monte Carlo simulator rejected the request. Code `sim_error`.
    Sim(SimError),
    /// The request exceeded the per-request service timeout. Code
    /// `timeout`.
    Timeout {
        /// The configured timeout in milliseconds.
        ms: u64,
    },
    /// The request's cooperative deadline fired and the compute path
    /// observed the cancellation — no partial result survives. Code
    /// `deadline_exceeded`.
    DeadlineExceeded {
        /// Elapsed time on the cancel token when the check fired, in
        /// milliseconds.
        after_ms: u64,
        /// The check site that observed the cancellation (e.g.
        /// `"obs_chunk"`), for operators correlating slow engines.
        site: &'static str,
    },
    /// The server is draining and no longer accepts work. Code
    /// `shutting_down`.
    ShuttingDown,
    /// The server shed this request under load (in-flight limit reached or
    /// worker-pool queue saturated). Code `overloaded`. The client should
    /// back off at least `retry_after_ms` before retrying.
    Overloaded {
        /// Suggested minimum backoff before the next attempt.
        retry_after_ms: u64,
    },
    /// The request died inside the service (worker panic). Code
    /// `internal`.
    Internal(String),
}

impl ServeError {
    /// The stable machine-readable error code.
    #[must_use]
    pub fn code(&self) -> &'static str {
        match self {
            ServeError::BadRequest(_) => "bad_request",
            ServeError::TooLarge { .. } => "request_too_large",
            ServeError::Netlist { .. } => "netlist_error",
            ServeError::Analysis(_) => "analysis_error",
            ServeError::Sim(_) => "sim_error",
            ServeError::Timeout { .. } => "timeout",
            ServeError::DeadlineExceeded { .. } => "deadline_exceeded",
            ServeError::ShuttingDown => "shutting_down",
            ServeError::Overloaded { .. } => "overloaded",
            ServeError::Internal(_) => "internal",
        }
    }

    /// Converts a netlist error, preserving the line number of syntax
    /// errors.
    #[must_use]
    pub fn netlist(e: &NetlistError) -> ServeError {
        match e {
            NetlistError::Parse { line, message } => ServeError::Netlist {
                message: message.clone(),
                line: Some(*line as u64),
            },
            other => ServeError::Netlist {
                message: other.to_string(),
                line: None,
            },
        }
    }

    /// The error payload object (`code`, `message`, optional `line`).
    #[must_use]
    pub fn to_json(&self) -> Json {
        let mut obj = Json::obj([
            ("code", Json::from(self.code())),
            ("message", Json::from(self.to_string())),
        ]);
        match self {
            ServeError::Netlist {
                line: Some(line), ..
            } => obj.push("line", Json::from(*line)),
            ServeError::TooLarge { limit } => obj.push("limit", Json::from(*limit)),
            ServeError::Timeout { ms } => obj.push("ms", Json::from(*ms)),
            ServeError::DeadlineExceeded { after_ms, site } => {
                obj.push("after_ms", Json::from(*after_ms));
                obj.push("site", Json::from(*site));
            }
            ServeError::Overloaded { retry_after_ms } => {
                obj.push("retry_after_ms", Json::from(*retry_after_ms));
            }
            _ => {}
        }
        obj
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::BadRequest(m) => write!(f, "bad request: {m}"),
            ServeError::TooLarge { limit } => {
                write!(f, "request exceeds the {limit}-byte frame limit")
            }
            ServeError::Netlist {
                message,
                line: Some(line),
            } => write!(f, "netlist error on line {line}: {message}"),
            ServeError::Netlist { message, .. } => write!(f, "netlist error: {message}"),
            ServeError::Analysis(e) => write!(f, "analysis error: {e}"),
            ServeError::Sim(e) => write!(f, "simulation error: {e}"),
            ServeError::Timeout { ms } => write!(f, "request exceeded the {ms} ms timeout"),
            ServeError::DeadlineExceeded { after_ms, site } => {
                write!(f, "deadline exceeded after {after_ms} ms (at {site})")
            }
            ServeError::ShuttingDown => write!(f, "server is shutting down"),
            ServeError::Overloaded { retry_after_ms } => {
                write!(f, "server is overloaded; retry after {retry_after_ms} ms")
            }
            ServeError::Internal(m) => write!(f, "internal error: {m}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Analysis(e) => Some(e),
            ServeError::Sim(e) => Some(e),
            _ => None,
        }
    }
}

impl From<RelogicError> for ServeError {
    fn from(e: RelogicError) -> Self {
        // Unwrap the core crate's Sim wrapper so the wire code reflects
        // the originating subsystem. Cancellations map first: they are a
        // deadline outcome, not an analysis failure.
        match e {
            RelogicError::Cancelled(c) => ServeError::DeadlineExceeded {
                after_ms: u64::try_from(c.after.as_millis()).unwrap_or(u64::MAX),
                site: c.checked_at,
            },
            RelogicError::Sim(s) => ServeError::Sim(s),
            other => ServeError::Analysis(other),
        }
    }
}

impl From<SimError> for ServeError {
    fn from(e: SimError) -> Self {
        // Route through the core ladder so `SimError::Cancelled` lands on
        // the `deadline_exceeded` wire code, same as every other engine.
        ServeError::from(RelogicError::from(e))
    }
}

/// A response frame: echoed id, request kind when known, and the outcome.
#[derive(Clone, Debug)]
pub struct Response {
    /// The request's `id`, echoed verbatim.
    pub id: Option<Json>,
    /// The request kind, when it could be determined.
    pub kind: Option<&'static str>,
    /// Result payload or typed error.
    pub body: Result<Json, ServeError>,
}

impl Response {
    /// The response as a JSON object.
    #[must_use]
    pub fn to_json(&self) -> Json {
        let mut obj = Json::Obj(Vec::with_capacity(4));
        if let Some(id) = &self.id {
            obj.push("id", id.clone());
        }
        obj.push("ok", Json::from(self.body.is_ok()));
        obj.push("kind", self.kind.map_or(Json::Null, Json::from));
        match &self.body {
            Ok(result) => obj.push("result", result.clone()),
            Err(e) => obj.push("error", e.to_json()),
        }
        obj
    }

    /// The response as one newline-terminated wire frame.
    #[must_use]
    pub fn to_line(&self) -> String {
        let mut line = self.to_json().encode();
        line.push('\n');
        line
    }
}

/// Parses one request frame into its echoed id and a [`Request`] (or the
/// typed error to send back).
pub fn parse_request(
    line: &str,
    limits: &RequestLimits,
) -> (Option<Json>, Result<Request, ServeError>) {
    let doc = match json::parse(line) {
        Ok(doc) => doc,
        Err(e) => return (None, Err(ServeError::BadRequest(e.to_string()))),
    };
    if !matches!(doc, Json::Obj(_)) {
        return (
            None,
            Err(ServeError::BadRequest(
                "request frame must be a JSON object".into(),
            )),
        );
    }
    // Echo scalar ids only; arbitrary nested ids would let a client make
    // the server replay large payloads.
    let id = match doc.get("id") {
        Some(v @ (Json::Num(_) | Json::Str(_) | Json::Bool(_))) => Some(v.clone()),
        Some(_) | None => None,
    };
    (id, build_request(&doc, limits))
}

fn build_request(doc: &Json, limits: &RequestLimits) -> Result<Request, ServeError> {
    let kind = doc
        .get("kind")
        .and_then(Json::as_str)
        .ok_or_else(|| bad("missing or non-string `kind`"))?;
    match kind {
        "analyze" => {
            let circuit = circuit_payload(doc)?;
            let eps = eps_list(doc, limits)?;
            let options = analyze_options(doc)?;
            let deadline_ms = opt_u64(doc, "deadline_ms", 0)?;
            Ok(Request::Analyze {
                circuit,
                eps,
                options,
                deadline_ms,
            })
        }
        "observability" => {
            let circuit = circuit_payload(doc)?;
            let eps = eps_list(doc, limits)?;
            let per_gate = opt_bool(doc, "per_gate", false)?;
            let deadline_ms = opt_u64(doc, "deadline_ms", 0)?;
            Ok(Request::Observability {
                circuit,
                eps,
                per_gate,
                deadline_ms,
            })
        }
        "monte_carlo" => {
            let circuit = circuit_payload(doc)?;
            let eps = opt_f64(doc, "eps", DEFAULT_EPS)?;
            let patterns = opt_u64(doc, "patterns", DEFAULT_PATTERNS)?;
            if patterns > limits.max_patterns {
                return Err(bad(&format!(
                    "patterns {patterns} exceeds the per-request limit {}",
                    limits.max_patterns
                )));
            }
            let seed = opt_u64(doc, "seed", 1)?;
            let threads = usize::try_from(opt_u64(doc, "threads", 0)?)
                .map_err(|_| bad("threads out of range"))?;
            if threads > limits.max_threads {
                return Err(bad(&format!(
                    "threads {threads} exceeds the per-request limit {}",
                    limits.max_threads
                )));
            }
            let deadline_ms = opt_u64(doc, "deadline_ms", 0)?;
            Ok(Request::MonteCarlo {
                circuit,
                eps,
                patterns,
                seed,
                threads,
                deadline_ms,
            })
        }
        "estimate" => {
            let circuit = circuit_payload(doc)?;
            let eps = opt_f64(doc, "eps", DEFAULT_EPS)?;
            let bdd_node_budget = usize::try_from(opt_u64(
                doc,
                "bdd_node_budget",
                u64::try_from(relogic_estimate::DEFAULT_BDD_NODE_BUDGET).unwrap_or(u64::MAX),
            )?)
            .map_err(|_| bad("`bdd_node_budget` out of range"))?;
            let patterns = opt_u64(doc, "patterns", DEFAULT_PATTERNS)?;
            if patterns > limits.max_patterns {
                return Err(bad(&format!(
                    "patterns {patterns} exceeds the per-request limit {}",
                    limits.max_patterns
                )));
            }
            let seed = opt_u64(doc, "seed", 1)?;
            let deadline_ms = opt_u64(doc, "deadline_ms", 0)?;
            Ok(Request::Estimate {
                circuit,
                eps,
                bdd_node_budget,
                patterns,
                seed,
                deadline_ms,
            })
        }
        "harden" => {
            let circuit = circuit_payload(doc)?;
            let eps = opt_f64(doc, "eps", DEFAULT_EPS)?;
            let area_budget = opt_f64(doc, "area_budget", DEFAULT_AREA_BUDGET)?;
            let max_steps = usize::try_from(opt_u64(doc, "max_steps", 0)?)
                .map_err(|_| bad("`max_steps` out of range"))?;
            let deadline_ms = opt_u64(doc, "deadline_ms", 0)?;
            Ok(Request::Harden {
                circuit,
                eps,
                area_budget,
                max_steps,
                deadline_ms,
            })
        }
        "critical_eps" => {
            let circuit = circuit_payload(doc)?;
            let threshold = opt_f64(doc, "threshold", DEFAULT_CRITICAL_THRESHOLD)?;
            let metric = match doc.get("metric") {
                None => CriticalMetric::Max,
                Some(v) => {
                    let tag = v.as_str().ok_or_else(|| bad("non-string `metric`"))?;
                    CriticalMetric::parse(tag).ok_or_else(|| {
                        bad(&format!(
                            "unknown metric `{tag}` (expected \"max\" or \"mean\")"
                        ))
                    })?
                }
            };
            let max_steps = usize::try_from(opt_u64(doc, "max_steps", 0)?)
                .map_err(|_| bad("`max_steps` out of range"))?;
            let deadline_ms = opt_u64(doc, "deadline_ms", 0)?;
            Ok(Request::CriticalEps {
                circuit,
                threshold,
                metric,
                max_steps,
                deadline_ms,
            })
        }
        "stats" => Ok(Request::Stats),
        "health" => Ok(Request::Health),
        other => Err(bad(&format!("unknown request kind `{other}`"))),
    }
}

fn bad(message: &str) -> ServeError {
    ServeError::BadRequest(message.to_owned())
}

fn circuit_payload(doc: &Json) -> Result<CircuitPayload, ServeError> {
    let netlist = doc
        .get("netlist")
        .and_then(Json::as_str)
        .ok_or_else(|| bad("missing or non-string `netlist`"))?
        .to_owned();
    let format = match doc.get("format") {
        None => NetlistFormat::Bench,
        Some(v) => {
            let tag = v.as_str().ok_or_else(|| bad("non-string `format`"))?;
            NetlistFormat::from_tag(tag).ok_or_else(|| {
                bad(&format!(
                    "unknown format `{tag}` (expected bench, blif, or verilog)"
                ))
            })?
        }
    };
    let backend = match doc.get("backend") {
        None => BackendSpec::Bdd,
        Some(v) => match v.as_str() {
            Some("bdd") => BackendSpec::Bdd,
            Some("sim") => BackendSpec::Sim {
                patterns: opt_u64(doc, "backend_patterns", DEFAULT_PATTERNS)?,
                seed: opt_u64(doc, "backend_seed", 1)?,
            },
            _ => return Err(bad("unknown backend (expected \"bdd\" or \"sim\")")),
        },
    };
    Ok(CircuitPayload {
        netlist,
        format,
        backend,
    })
}

fn eps_list(doc: &Json, limits: &RequestLimits) -> Result<Vec<f64>, ServeError> {
    let eps = match doc.get("eps") {
        None => vec![DEFAULT_EPS],
        Some(Json::Num(v)) => vec![*v],
        Some(Json::Arr(items)) => {
            let mut eps = Vec::with_capacity(items.len());
            for item in items {
                eps.push(
                    item.as_f64()
                        .ok_or_else(|| bad("non-numeric `eps` entry"))?,
                );
            }
            eps
        }
        Some(_) => return Err(bad("`eps` must be a number or an array of numbers")),
    };
    if eps.is_empty() {
        return Err(bad("`eps` array is empty"));
    }
    if eps.len() > limits.max_eps_points {
        return Err(bad(&format!(
            "{} eps points exceed the per-request limit {}",
            eps.len(),
            limits.max_eps_points
        )));
    }
    Ok(eps)
}

fn analyze_options(doc: &Json) -> Result<AnalyzeRequestOptions, ServeError> {
    let mut single_pass = if opt_bool(doc, "no_correlations", false)? {
        SinglePassOptions::without_correlations()
    } else {
        SinglePassOptions::default()
    };
    match doc.get("partner_cap") {
        None => {}
        Some(Json::Null) => single_pass.partner_cap = None,
        Some(Json::Str(s)) if s == "none" => single_pass.partner_cap = None,
        Some(v) => {
            let cap = v.as_u64().ok_or_else(|| {
                bad("`partner_cap` must be a non-negative integer, null, or \"none\"")
            })?;
            single_pass.partner_cap =
                Some(usize::try_from(cap).map_err(|_| bad("`partner_cap` out of range"))?);
        }
    }
    single_pass.strict = opt_bool(doc, "strict", false)?;
    single_pass.value_conditioning = opt_bool(doc, "value_conditioning", false)?;
    Ok(AnalyzeRequestOptions {
        single_pass,
        diagnostics: opt_bool(doc, "diagnostics", false)?,
        per_node: opt_bool(doc, "per_node", false)?,
    })
}

fn opt_bool(doc: &Json, key: &str, default: bool) -> Result<bool, ServeError> {
    match doc.get(key) {
        None => Ok(default),
        Some(v) => v
            .as_bool()
            .ok_or_else(|| bad(&format!("`{key}` must be a boolean"))),
    }
}

fn opt_u64(doc: &Json, key: &str, default: u64) -> Result<u64, ServeError> {
    match doc.get(key) {
        None => Ok(default),
        Some(v) => v
            .as_u64()
            .ok_or_else(|| bad(&format!("`{key}` must be a non-negative integer"))),
    }
}

fn opt_f64(doc: &Json, key: &str, default: f64) -> Result<f64, ServeError> {
    match doc.get(key) {
        None => Ok(default),
        Some(v) => v
            .as_f64()
            .ok_or_else(|| bad(&format!("`{key}` must be a number"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SMALL: &str = "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = NAND(a, b)\n";

    fn frame(extra: &str) -> String {
        format!(
            r#"{{"kind":"analyze","netlist":"INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = NAND(a, b)\n"{extra}}}"#
        )
    }

    #[test]
    fn parses_minimal_analyze() {
        let (id, req) = parse_request(&frame(""), &RequestLimits::default());
        assert!(id.is_none());
        let Ok(Request::Analyze {
            circuit,
            eps,
            options,
            deadline_ms,
        }) = req
        else {
            panic!("expected analyze: {req:?}");
        };
        assert_eq!(circuit.netlist, SMALL);
        assert_eq!(circuit.format, NetlistFormat::Bench);
        assert_eq!(circuit.backend, BackendSpec::Bdd);
        assert_eq!(eps, vec![DEFAULT_EPS]);
        assert_eq!(options.single_pass.partner_cap, Some(64));
        assert!(!options.diagnostics);
        assert_eq!(deadline_ms, 0);
    }

    #[test]
    fn parses_full_analyze_options() {
        let (id, req) = parse_request(
            &frame(
                r#","id":"r1","eps":[0.1,0.2],"partner_cap":"none","strict":true,"diagnostics":true,"per_node":true,"backend":"sim","backend_patterns":1024,"backend_seed":9"#,
            ),
            &RequestLimits::default(),
        );
        assert_eq!(id, Some(Json::Str("r1".into())));
        let Ok(Request::Analyze {
            circuit,
            eps,
            options,
            ..
        }) = req
        else {
            panic!();
        };
        assert_eq!(eps, vec![0.1, 0.2]);
        assert_eq!(options.single_pass.partner_cap, None);
        assert!(options.single_pass.strict);
        assert!(options.per_node);
        assert_eq!(
            circuit.backend,
            BackendSpec::Sim {
                patterns: 1024,
                seed: 9
            }
        );
    }

    #[test]
    fn parses_monte_carlo_and_stats() {
        let (_, req) = parse_request(
            r#"{"kind":"monte_carlo","netlist":"x","patterns":512,"seed":7,"threads":2}"#,
            &RequestLimits::default(),
        );
        let Ok(Request::MonteCarlo {
            patterns,
            seed,
            threads,
            ..
        }) = req
        else {
            panic!("{req:?}");
        };
        assert_eq!((patterns, seed, threads), (512, 7, 2));
        let (_, req) = parse_request(r#"{"kind":"stats"}"#, &RequestLimits::default());
        assert!(matches!(req, Ok(Request::Stats)));
    }

    #[test]
    fn parses_health_and_admission_classification() {
        let (_, req) = parse_request(r#"{"kind":"health","id":3}"#, &RequestLimits::default());
        let Ok(req) = req else { panic!("{req:?}") };
        assert!(matches!(req, Request::Health));
        assert_eq!(req.kind(), "health");
        assert!(!req.needs_admission());
        assert!(!Request::Stats.needs_admission());
        let (_, req) = parse_request(
            r#"{"kind":"monte_carlo","netlist":"x"}"#,
            &RequestLimits::default(),
        );
        assert!(req.map(|r| r.needs_admission()).unwrap_or(false));
    }

    #[test]
    fn parses_estimator_kinds_with_defaults_and_admission() {
        let limits = RequestLimits::default();
        let (_, req) = parse_request(r#"{"kind":"estimate","netlist":"x"}"#, &limits);
        let Ok(Request::Estimate {
            eps,
            bdd_node_budget,
            patterns,
            seed,
            ..
        }) = req
        else {
            panic!("{req:?}");
        };
        assert_eq!(eps, DEFAULT_EPS);
        assert_eq!(bdd_node_budget, relogic_estimate::DEFAULT_BDD_NODE_BUDGET);
        assert_eq!((patterns, seed), (DEFAULT_PATTERNS, 1));

        let (_, req) = parse_request(
            r#"{"kind":"harden","netlist":"x","eps":0.02,"area_budget":3.5,"max_steps":4}"#,
            &limits,
        );
        let Ok(req) = req else { panic!("{req:?}") };
        assert!(req.needs_admission());
        let Request::Harden {
            eps,
            area_budget,
            max_steps,
            ..
        } = req
        else {
            panic!();
        };
        assert_eq!((eps, area_budget, max_steps), (0.02, 3.5, 4));

        let (_, req) = parse_request(
            r#"{"kind":"critical_eps","netlist":"x","threshold":0.2,"metric":"mean"}"#,
            &limits,
        );
        let Ok(req) = req else { panic!("{req:?}") };
        assert_eq!(req.kind(), "critical_eps");
        assert!(req.needs_admission());
        let Request::CriticalEps {
            threshold,
            metric,
            max_steps,
            ..
        } = req
        else {
            panic!();
        };
        assert_eq!(
            (threshold, metric, max_steps),
            (0.2, CriticalMetric::Mean, 0)
        );
    }

    #[test]
    fn estimator_kind_field_validation() {
        let limits = RequestLimits::default();
        for line in [
            r#"{"kind":"estimate","netlist":"x","bdd_node_budget":-1}"#,
            r#"{"kind":"estimate","netlist":"x","patterns":99999999999}"#,
            r#"{"kind":"harden","netlist":"x","area_budget":"big"}"#,
            r#"{"kind":"critical_eps","netlist":"x","metric":"p99"}"#,
            r#"{"kind":"critical_eps","netlist":"x","metric":7}"#,
        ] {
            let (_, req) = parse_request(line, &limits);
            match req {
                Err(ServeError::BadRequest(_)) => {}
                other => panic!("{line} should be bad_request, got {other:?}"),
            }
        }
    }

    #[test]
    fn parses_deadline_ms_on_every_analysis_kind() {
        let limits = RequestLimits::default();
        for kind in [
            "analyze",
            "observability",
            "monte_carlo",
            "estimate",
            "harden",
            "critical_eps",
        ] {
            let line = format!(r#"{{"kind":"{kind}","netlist":"x","deadline_ms":250}}"#);
            let (_, req) = parse_request(&line, &limits);
            let req = req.unwrap_or_else(|e| panic!("{kind}: {e}"));
            assert_eq!(req.deadline_ms(), Some(250), "{kind}");
            let line = format!(r#"{{"kind":"{kind}","netlist":"x"}}"#);
            let (_, req) = parse_request(&line, &limits);
            assert_eq!(req.unwrap().deadline_ms(), None, "{kind} default");
        }
        // A malformed deadline is a bad_request, and stats/health carry none.
        let (_, req) = parse_request(
            r#"{"kind":"monte_carlo","netlist":"x","deadline_ms":-5}"#,
            &limits,
        );
        assert!(matches!(req, Err(ServeError::BadRequest(_))));
        assert_eq!(Request::Stats.deadline_ms(), None);
        assert_eq!(Request::Health.deadline_ms(), None);
    }

    #[test]
    fn cancellation_maps_to_deadline_exceeded_wire_code() {
        let c = relogic_sim::Cancelled {
            after: std::time::Duration::from_millis(72),
            checked_at: "obs_chunk",
        };
        let e = ServeError::from(RelogicError::Cancelled(c));
        assert_eq!(e.code(), "deadline_exceeded");
        let json = e.to_json();
        assert_eq!(json.get("after_ms").and_then(Json::as_u64), Some(72));
        assert_eq!(json.get("site").and_then(Json::as_str), Some("obs_chunk"));
        assert!(e.to_string().contains("deadline exceeded after 72 ms"));
        // The SimError route stays typed too.
        let e = ServeError::from(RelogicError::from(SimError::Cancelled(c)));
        assert_eq!(e.code(), "deadline_exceeded");
    }

    #[test]
    fn overloaded_error_carries_retry_hint() {
        let e = ServeError::Overloaded { retry_after_ms: 75 };
        assert_eq!(e.code(), "overloaded");
        let json = e.to_json();
        assert_eq!(json.get("retry_after_ms").and_then(Json::as_u64), Some(75));
        assert!(e.to_string().contains("75 ms"));
    }

    #[test]
    fn rejects_malformed_frames_with_bad_request() {
        let limits = RequestLimits::default();
        for line in [
            "",
            "not json",
            "42",
            "[]",
            r#"{"kind":"frobnicate"}"#,
            r#"{"netlist":"x"}"#,
            r#"{"kind":"analyze"}"#,
            r#"{"kind":"analyze","netlist":7}"#,
            r#"{"kind":"analyze","netlist":"x","eps":"hi"}"#,
            r#"{"kind":"analyze","netlist":"x","eps":[]}"#,
            r#"{"kind":"analyze","netlist":"x","format":"pla"}"#,
            r#"{"kind":"analyze","netlist":"x","partner_cap":-3}"#,
            r#"{"kind":"monte_carlo","netlist":"x","patterns":99999999999999999999}"#,
        ] {
            let (_, req) = parse_request(line, &limits);
            match req {
                Err(ServeError::BadRequest(_)) => {}
                other => panic!("{line} should be bad_request, got {other:?}"),
            }
        }
    }

    #[test]
    fn limits_are_enforced() {
        let limits = RequestLimits {
            max_eps_points: 2,
            max_patterns: 100,
            max_threads: 4,
        };
        let (_, req) = parse_request(&frame(r#","eps":[0.1,0.2,0.3]"#), &limits);
        assert!(matches!(req, Err(ServeError::BadRequest(_))));
        let (_, req) = parse_request(
            r#"{"kind":"monte_carlo","netlist":"x","patterns":101}"#,
            &limits,
        );
        assert!(matches!(req, Err(ServeError::BadRequest(_))));
        let (_, req) = parse_request(
            r#"{"kind":"monte_carlo","netlist":"x","threads":5}"#,
            &limits,
        );
        assert!(matches!(req, Err(ServeError::BadRequest(_))));
    }

    #[test]
    fn response_frames_have_stable_shape() {
        let ok = Response {
            id: Some(Json::Num(1.0)),
            kind: Some("stats"),
            body: Ok(Json::obj([("x", Json::from(1u64))])),
        };
        assert_eq!(
            ok.to_line(),
            "{\"id\":1,\"ok\":true,\"kind\":\"stats\",\"result\":{\"x\":1}}\n"
        );
        let err = Response {
            id: None,
            kind: None,
            body: Err(ServeError::BadRequest("nope".into())),
        };
        let line = err.to_line();
        assert!(line.contains("\"ok\":false"));
        assert!(line.contains("\"code\":\"bad_request\""));
        assert!(line.ends_with('\n'));
    }

    #[test]
    fn netlist_errors_carry_line_numbers() {
        let e = NetlistError::Parse {
            line: 3,
            message: "what".into(),
        };
        let se = ServeError::netlist(&e);
        assert_eq!(se.code(), "netlist_error");
        let json = se.to_json();
        assert_eq!(json.get("line").and_then(Json::as_u64), Some(3));
    }

    #[test]
    fn sim_errors_unwrap_from_relogic() {
        let e = ServeError::from(RelogicError::Sim(SimError::ZeroPatternBudget));
        assert_eq!(e.code(), "sim_error");
        let e = ServeError::from(RelogicError::EmptyCircuit);
        assert_eq!(e.code(), "analysis_error");
    }
}
