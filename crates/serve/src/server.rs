//! Socket front-end: TCP + Unix listeners, a bounded connection worker
//! pool, per-connection frame loops, and graceful drain.
//!
//! Backpressure chain: accept threads hand connections to a
//! [`relogic_sim::exec::WorkerPool`] with a bounded queue; when every
//! worker is busy and the queue is full, the acceptor waits a bounded
//! [`SUBMIT_WAIT`] for space and then sheds the connection with a typed
//! `overloaded` farewell (carrying a retry hint), so a saturated or
//! wedged pool surfaces to clients as a retryable error rather than a
//! stuck accept loop.

use crate::proto::{Response, ServeError};
use crate::service::{Service, ServiceConfig};
use relogic_sim::exec::{Job, WorkerPool};
use std::io::{BufRead, BufReader, ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::fd::{AsRawFd, RawFd};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How long a connection read blocks before re-checking the drain flag.
const POLL_INTERVAL: Duration = Duration::from_millis(200);

/// How long an acceptor waits for worker-pool queue space before shedding
/// the connection with an `overloaded` farewell. Bounded so a wedged pool
/// surfaces as a typed error on the client, never as a silently stuck
/// accept loop.
const SUBMIT_WAIT: Duration = Duration::from_millis(500);

/// Server configuration: transports plus the embedded [`ServiceConfig`].
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// TCP listen address (e.g. `127.0.0.1:7171`), or `None` for no TCP.
    pub tcp: Option<String>,
    /// Unix-socket path, or `None` for no Unix listener.
    pub unix: Option<PathBuf>,
    /// Connection worker threads; `0` auto-detects.
    pub threads: usize,
    /// Bounded depth of the pending-connection queue feeding the workers.
    pub queue_capacity: usize,
    /// Close a connection after this much idle time between frames; `0`
    /// disables the idle timeout.
    pub idle_timeout_ms: u64,
    /// Graceful-drain grace period: after shutdown begins, in-flight
    /// requests get this long to finish before their cancel tokens are
    /// fired. `0` cancels immediately. Bounds how long a wedged-slow job
    /// can delay shutdown to roughly the grace period plus one engine
    /// check interval.
    pub drain_grace_ms: u64,
    /// Transport-independent service settings.
    pub service: ServiceConfig,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            tcp: None,
            unix: None,
            threads: 0,
            queue_capacity: 64,
            idle_timeout_ms: 30_000,
            drain_grace_ms: 2_000,
            service: ServiceConfig::default(),
        }
    }
}

struct Shared {
    service: Service,
    idle_timeout: Duration,
    drain_grace: Duration,
    max_request_bytes: usize,
}

/// A running server; dropping it does **not** stop it — call
/// [`Server::shutdown`].
pub struct Server {
    shared: Arc<Shared>,
    pool: WorkerPool,
    accept_threads: Vec<std::thread::JoinHandle<()>>,
    tcp_addr: Option<SocketAddr>,
    unix_path: Option<PathBuf>,
}

impl Server {
    /// Binds the configured listeners and starts accepting connections.
    ///
    /// # Errors
    ///
    /// Returns the I/O error if a listener cannot be bound (address in
    /// use, bad path, permissions).
    pub fn start(config: ServerConfig) -> std::io::Result<Server> {
        let max_request_bytes = config.service.max_request_bytes;
        let shared = Arc::new(Shared {
            service: Service::new(config.service),
            idle_timeout: Duration::from_millis(config.idle_timeout_ms),
            drain_grace: Duration::from_millis(config.drain_grace_ms),
            max_request_bytes,
        });
        let pool = WorkerPool::new(config.threads, config.queue_capacity.max(1));
        #[cfg(feature = "chaos")]
        if let Some(chaos) = shared.service.chaos() {
            pool.install_chaos(Arc::clone(chaos));
        }
        {
            let submitter = pool.submitter();
            shared
                .service
                .install_queue_probe(move || submitter.queued());
        }
        let mut accept_threads = Vec::new();
        let mut tcp_addr = None;
        let mut unix_path = None;
        // Any failure past this point (bind, listener setup, acceptor
        // spawn) must tear the partially started server down instead of
        // leaking accept threads or the socket file.
        let setup = (|| -> std::io::Result<()> {
            if let Some(addr) = &config.tcp {
                let listener = TcpListener::bind(addr)?;
                listener.set_nonblocking(true)?;
                tcp_addr = Some(listener.local_addr()?);
                accept_threads.push(spawn_acceptor(
                    "relogic-serve-tcp-accept",
                    listener,
                    Arc::clone(&shared),
                    pool_handle(&pool),
                    |stream: TcpStream, shared| {
                        let _ = stream.set_nodelay(true);
                        serve_connection(stream, &shared);
                    },
                )?);
            }
            if let Some(path) = &config.unix {
                // A stale socket file from a previous run would make bind
                // fail.
                if path.exists() {
                    std::fs::remove_file(path)?;
                }
                let listener = UnixListener::bind(path)?;
                listener.set_nonblocking(true)?;
                unix_path = Some(path.clone());
                accept_threads.push(spawn_acceptor(
                    "relogic-serve-unix-accept",
                    listener,
                    Arc::clone(&shared),
                    pool_handle(&pool),
                    |stream: UnixStream, shared| serve_connection(stream, &shared),
                )?);
            }
            Ok(())
        })();
        if let Err(e) = setup {
            shared.service.begin_drain();
            for handle in accept_threads {
                let _ = handle.join();
            }
            pool.shutdown();
            if let Some(path) = &unix_path {
                let _ = std::fs::remove_file(path);
            }
            return Err(e);
        }
        Ok(Server {
            shared,
            pool,
            accept_threads,
            tcp_addr,
            unix_path,
        })
    }

    /// The bound TCP address, if a TCP listener was configured.
    #[must_use]
    pub fn tcp_addr(&self) -> Option<SocketAddr> {
        self.tcp_addr
    }

    /// The bound Unix-socket path, if configured.
    #[must_use]
    pub fn unix_path(&self) -> Option<&PathBuf> {
        self.unix_path.as_ref()
    }

    /// The underlying service (counters, cache — useful in tests).
    #[must_use]
    pub fn service(&self) -> &Service {
        &self.shared.service
    }

    /// True once a drain has been requested.
    #[must_use]
    pub fn is_draining(&self) -> bool {
        self.shared.service.is_draining()
    }

    /// Graceful shutdown: stop accepting, give in-flight frames the
    /// configured grace period to finish, then *fire* their cancel
    /// tokens, join every thread, and unlink the Unix socket. A
    /// wedged-slow job cannot hold shutdown hostage: past the grace
    /// period it unwinds at its next engine check site and its client is
    /// answered with `shutting_down`.
    pub fn shutdown(self) {
        self.shared.service.begin_drain();
        for handle in self.accept_threads {
            let _ = handle.join();
        }
        let deadline = Instant::now() + self.shared.drain_grace;
        while self.shared.service.inflight_token_count() > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
        let _ = self.shared.service.cancel_inflight();
        // Queued connections still run; each notices the drain flag after
        // at most one poll interval and closes after its current frame.
        self.pool.shutdown();
        if let Some(path) = &self.unix_path {
            let _ = std::fs::remove_file(path);
        }
    }
}

/// The subset of the pool the acceptors need, cloneable across threads.
/// A cloneable handle that submits boxed jobs to the shared worker pool,
/// waiting at most [`SUBMIT_WAIT`] for queue space. Rejections are
/// handled by the job's own drop guard (see [`PendingConn`]), so the
/// result is intentionally discarded here.
type Submit = Arc<dyn Fn(Job) + Send + Sync>;

fn pool_handle(pool: &WorkerPool) -> Submit {
    let submitter = pool.submitter();
    Arc::new(move |job| {
        // Bounded patience: if the queue stays full (overload, or a
        // wedged pool) the job is dropped and its PendingConn guard
        // answers the client with `overloaded` instead of leaving the
        // connection silently stuck behind the accept loop.
        let _ = submitter.submit_timeout_boxed(job, SUBMIT_WAIT);
    })
}

/// An accepted connection on its way to a pool worker. If the job never
/// runs — the queue stayed full, or the pool is already draining — the
/// guard's `Drop` still answers the client with a typed farewell
/// (`overloaded` with a retry hint, or `shutting_down` during drain) and
/// accounts the shed, so no client is ever left staring at a silent
/// close.
struct PendingConn<S: Write> {
    stream: Option<S>,
    shared: Arc<Shared>,
}

impl<S: Write> PendingConn<S> {
    /// Runs the connection handler, disarming the farewell guard.
    fn serve(mut self, handler: fn(S, Arc<Shared>)) {
        if let Some(stream) = self.stream.take() {
            let shared = Arc::clone(&self.shared);
            handler(stream, shared);
        }
    }
}

impl<S: Write> Drop for PendingConn<S> {
    fn drop(&mut self) {
        let Some(mut stream) = self.stream.take() else {
            return;
        };
        let service = &self.shared.service;
        let error = if service.is_draining() {
            ServeError::ShuttingDown
        } else {
            service.stats().shed.fetch_add(1, Ordering::Relaxed);
            ServeError::Overloaded {
                retry_after_ms: service.retry_after_hint_ms(),
            }
        };
        let line = Response {
            id: None,
            kind: None,
            body: Err(error),
        }
        .to_line();
        let _ = stream.write_all(line.as_bytes());
        let _ = stream.flush();
    }
}

/// Generic accept loop over either listener type.
///
/// # Errors
///
/// Returns the spawn error if the acceptor thread cannot be created
/// (resource exhaustion); the caller is responsible for tearing down any
/// partially started server state.
fn spawn_acceptor<L, S>(
    name: &str,
    listener: L,
    shared: Arc<Shared>,
    submit: Submit,
    handler: fn(S, Arc<Shared>),
) -> std::io::Result<std::thread::JoinHandle<()>>
where
    L: Accept<Stream = S> + Send + 'static,
    S: Write + Send + 'static,
{
    std::thread::Builder::new()
        .name(name.to_string())
        .spawn(move || loop {
            if shared.service.is_draining() {
                return;
            }
            match listener.accept_stream() {
                Ok(stream) => {
                    shared
                        .service
                        .stats()
                        .connections_accepted
                        .fetch_add(1, Ordering::Relaxed);
                    let pending = PendingConn {
                        stream: Some(stream),
                        shared: Arc::clone(&shared),
                    };
                    submit(Box::new(move || pending.serve(handler)));
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(20));
                }
                Err(_) => std::thread::sleep(Duration::from_millis(20)),
            }
        })
}

/// Uniform non-blocking accept over TCP and Unix listeners.
trait Accept {
    /// The accepted stream type.
    type Stream;
    /// Accepts one pending connection, `WouldBlock` if none.
    fn accept_stream(&self) -> std::io::Result<Self::Stream>;
}

impl Accept for TcpListener {
    type Stream = TcpStream;
    fn accept_stream(&self) -> std::io::Result<TcpStream> {
        self.accept().map(|(s, _)| s)
    }
}

impl Accept for UnixListener {
    type Stream = UnixStream;
    fn accept_stream(&self) -> std::io::Result<UnixStream> {
        self.accept().map(|(s, _)| s)
    }
}

/// A stream the frame loop can drive: read with a poll timeout, write.
trait Connection: Read + Write {
    /// Sets the read timeout used for drain-flag polling.
    fn set_poll_timeout(&self, timeout: Duration) -> std::io::Result<()>;

    /// The raw socket descriptor for disconnect probing, when the stream
    /// has one. `None` disables the probe (the request still runs under
    /// its deadline, it just cannot notice a vanished client early).
    fn probe_fd(&self) -> Option<RawFd> {
        None
    }
}

impl Connection for TcpStream {
    fn set_poll_timeout(&self, timeout: Duration) -> std::io::Result<()> {
        self.set_read_timeout(Some(timeout))
    }

    fn probe_fd(&self) -> Option<RawFd> {
        Some(self.as_raw_fd())
    }
}

impl Connection for UnixStream {
    fn set_poll_timeout(&self, timeout: Duration) -> std::io::Result<()> {
        self.set_read_timeout(Some(timeout))
    }

    fn probe_fd(&self) -> Option<RawFd> {
        Some(self.as_raw_fd())
    }
}

/// Whether the peer of `fd` has closed the connection, observed without
/// consuming any pipelined bytes: a non-blocking one-byte `MSG_PEEK`
/// `recv(2)` returns 0 exactly at EOF, while a live-but-quiet peer yields
/// `EAGAIN` (-1) and a pipelined frame yields the peeked byte (>0).
///
/// Note a client that half-closes its write side while still waiting to
/// read the reply is indistinguishable from a vanished one here; the
/// NDJSON protocol keeps the stream fully open for its lifetime, so a
/// write-side EOF is treated as abandonment.
fn peer_disconnected(fd: RawFd) -> bool {
    const MSG_PEEK: i32 = 2;
    const MSG_DONTWAIT: i32 = 0x40;
    // Declared directly (see `signal.rs`) to avoid the `libc` crate;
    // `recv` is in every libc the workspace targets.
    unsafe extern "C" {
        fn recv(fd: i32, buf: *mut u8, len: usize, flags: i32) -> isize;
    }
    let mut byte = 0u8;
    // SAFETY: `fd` is a live socket owned by this connection's stream for
    // the duration of the frame loop; the buffer is a valid one-byte
    // write target; MSG_PEEK leaves the stream state untouched.
    let n = unsafe { recv(fd, &raw mut byte, 1, MSG_PEEK | MSG_DONTWAIT) };
    n == 0
}

/// A fault-injecting wrapper around a live connection stream. Reads can
/// stall (latency spike) or come back torn into single bytes; a write can
/// be cut mid-frame, after which the stream reports `BrokenPipe` forever —
/// the closest a userspace shim gets to a peer dying between two
/// `write(2)` calls.
#[cfg(feature = "chaos")]
struct ChaosStream<S: Connection> {
    inner: S,
    chaos: Arc<relogic_sim::chaos::Chaos>,
    /// Set after an injected mid-write EOF; every later write fails.
    dead: bool,
}

#[cfg(feature = "chaos")]
impl<S: Connection> Read for ChaosStream<S> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        use relogic_sim::chaos::ChaosSite;
        self.chaos.maybe_delay(ChaosSite::ReadStall);
        if buf.len() > 1 && self.chaos.should(ChaosSite::TornRead) {
            // A torn read: deliver one byte, forcing the frame loop to
            // reassemble the request across many short reads.
            return self.inner.read(&mut buf[..1]);
        }
        self.inner.read(buf)
    }
}

#[cfg(feature = "chaos")]
impl<S: Connection> Write for ChaosStream<S> {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        use relogic_sim::chaos::ChaosSite;
        if self.dead {
            return Err(std::io::Error::new(
                ErrorKind::BrokenPipe,
                "chaos: connection torn down by injected EOF",
            ));
        }
        if self.chaos.should(ChaosSite::WriteEof) {
            // Push half the frame out, then die: the client sees a
            // truncated line with no newline — a torn frame it must
            // discard and retry on a fresh connection.
            let _ = self.inner.write(&buf[..buf.len() / 2]);
            let _ = self.inner.flush();
            self.dead = true;
            return Err(std::io::Error::new(
                ErrorKind::BrokenPipe,
                "chaos: injected mid-write EOF",
            ));
        }
        self.inner.write(buf)
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.inner.flush()
    }
}

#[cfg(feature = "chaos")]
impl<S: Connection> Connection for ChaosStream<S> {
    fn set_poll_timeout(&self, timeout: Duration) -> std::io::Result<()> {
        self.inner.set_poll_timeout(timeout)
    }

    fn probe_fd(&self) -> Option<RawFd> {
        self.inner.probe_fd()
    }
}

/// Runs the NDJSON frame loop on one connection until EOF, idle timeout,
/// drain, or an unrecoverable I/O error. With an active chaos config the
/// stream is first wrapped in the fault-injecting [`ChaosStream`].
fn serve_connection<S: Connection>(stream: S, shared: &Arc<Shared>) {
    #[cfg(feature = "chaos")]
    if let Some(chaos) = shared.service.chaos() {
        let wrapped = ChaosStream {
            inner: stream,
            chaos: Arc::clone(chaos),
            dead: false,
        };
        serve_connection_impl(wrapped, shared);
        return;
    }
    serve_connection_impl(stream, shared);
}

fn serve_connection_impl<S: Connection>(stream: S, shared: &Arc<Shared>) {
    let stats = shared.service.stats();
    stats.connections_active.fetch_add(1, Ordering::Relaxed);
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        frame_loop(stream, shared);
    }));
    stats.connections_active.fetch_sub(1, Ordering::Relaxed);
    // A panic in the frame loop kills only this connection; the counter
    // stays balanced and the worker thread survives via the pool's own
    // catch_unwind as well.
    drop(result);
}

fn frame_loop<S: Connection>(stream: S, shared: &Arc<Shared>) {
    if stream.set_poll_timeout(POLL_INTERVAL).is_err() {
        return;
    }
    let mut reader = BufReader::new(stream);
    let mut buf: Vec<u8> = Vec::new();
    let mut idle = Duration::ZERO;
    loop {
        if shared.service.is_draining() {
            let line = Response {
                id: None,
                kind: None,
                body: Err(ServeError::ShuttingDown),
            }
            .to_line();
            let _ = reader.get_mut().write_all(line.as_bytes());
            return;
        }
        match read_frame(&mut reader, &mut buf, shared.max_request_bytes) {
            FrameRead::Frame => {
                idle = Duration::ZERO;
                let started = Instant::now();
                let reply = match std::str::from_utf8(&buf) {
                    Ok(text) => {
                        let text = text.trim();
                        if text.is_empty() {
                            buf.clear();
                            continue;
                        }
                        // Probe the socket while the request computes: a
                        // vanished client cancels the in-flight job and
                        // frees this worker instead of computing a reply
                        // nobody will read.
                        match reader.get_ref().probe_fd() {
                            Some(fd) => {
                                let gone = move || peer_disconnected(fd);
                                shared.service.handle_line_with_probe(text, Some(&gone))
                            }
                            None => shared.service.handle_line(text),
                        }
                    }
                    Err(_) => Response {
                        id: None,
                        kind: None,
                        body: Err(ServeError::BadRequest(
                            "request frame is not valid UTF-8".into(),
                        )),
                    }
                    .to_line(),
                };
                buf.clear();
                if reader.get_mut().write_all(reply.as_bytes()).is_err()
                    || reader.get_mut().flush().is_err()
                {
                    return;
                }
                // Time spent computing doesn't count against idleness.
                let _ = started;
            }
            FrameRead::TooLarge => {
                let line = Response {
                    id: None,
                    kind: None,
                    body: Err(ServeError::TooLarge {
                        limit: shared.max_request_bytes,
                    }),
                }
                .to_line();
                let _ = reader.get_mut().write_all(line.as_bytes());
                // The stream is mid-frame; resynchronising is not worth
                // it — close and let the client reconnect.
                return;
            }
            FrameRead::Eof => return,
            FrameRead::WouldBlock => {
                idle += POLL_INTERVAL;
                if !shared.idle_timeout.is_zero() && idle >= shared.idle_timeout {
                    return;
                }
            }
            FrameRead::Error => return,
        }
    }
}

enum FrameRead {
    /// A full newline-terminated frame is in the buffer.
    Frame,
    /// The frame exceeded the size limit.
    TooLarge,
    /// Clean end of stream (a final unterminated frame is promoted to
    /// `Frame` first if non-empty).
    Eof,
    /// Poll timeout expired with no new bytes.
    WouldBlock,
    /// Unrecoverable I/O error.
    Error,
}

/// Reads until `\n`, EOF, size limit, or poll timeout. Partial data is
/// kept in `buf` across `WouldBlock` returns so slow writers work.
fn read_frame<R: BufRead>(reader: &mut R, buf: &mut Vec<u8>, limit: usize) -> FrameRead {
    loop {
        let available = match reader.fill_buf() {
            Ok(available) => available,
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                return FrameRead::WouldBlock;
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => return FrameRead::Error,
        };
        if available.is_empty() {
            if buf.is_empty() {
                return FrameRead::Eof;
            }
            // Final frame without a trailing newline.
            return FrameRead::Frame;
        }
        let (consume, done) = match available.iter().position(|&b| b == b'\n') {
            Some(pos) => (pos + 1, true),
            None => (available.len(), false),
        };
        if buf.len() + consume > limit {
            reader.consume(consume);
            buf.clear();
            return FrameRead::TooLarge;
        }
        buf.extend_from_slice(&available[..consume]);
        reader.consume(consume);
        if done {
            if buf.last() == Some(&b'\n') {
                buf.pop();
            }
            return FrameRead::Frame;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn read_frame_splits_on_newlines() {
        let mut reader = BufReader::new(Cursor::new(b"one\ntwo\n".to_vec()));
        let mut buf = Vec::new();
        assert!(matches!(
            read_frame(&mut reader, &mut buf, 1024),
            FrameRead::Frame
        ));
        assert_eq!(buf, b"one");
        buf.clear();
        assert!(matches!(
            read_frame(&mut reader, &mut buf, 1024),
            FrameRead::Frame
        ));
        assert_eq!(buf, b"two");
        buf.clear();
        assert!(matches!(
            read_frame(&mut reader, &mut buf, 1024),
            FrameRead::Eof
        ));
    }

    #[test]
    fn read_frame_promotes_trailing_partial_to_frame() {
        let mut reader = BufReader::new(Cursor::new(b"tail".to_vec()));
        let mut buf = Vec::new();
        assert!(matches!(
            read_frame(&mut reader, &mut buf, 1024),
            FrameRead::Frame
        ));
        assert_eq!(buf, b"tail");
    }

    #[test]
    fn read_frame_enforces_the_size_limit() {
        let mut reader = BufReader::new(Cursor::new(vec![b'x'; 64]));
        let mut buf = Vec::new();
        assert!(matches!(
            read_frame(&mut reader, &mut buf, 16),
            FrameRead::TooLarge
        ));
        assert!(buf.is_empty());
    }
}
