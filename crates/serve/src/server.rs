//! Socket front-end: TCP + Unix listeners, a bounded connection worker
//! pool, per-connection frame loops, and graceful drain.
//!
//! Backpressure chain: accept threads hand connections to a
//! [`relogic_sim::exec::WorkerPool`] with a bounded queue; when every
//! worker is busy and the queue is full, `submit` blocks the accept
//! thread, which in turn stops pulling from the listener backlog — the
//! kernel's own accept queue becomes the final bound.

use crate::proto::{Response, ServeError};
use crate::service::{Service, ServiceConfig};
use relogic_sim::exec::{Job, WorkerPool};
use std::io::{BufRead, BufReader, ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How long a connection read blocks before re-checking the drain flag.
const POLL_INTERVAL: Duration = Duration::from_millis(200);

/// Server configuration: transports plus the embedded [`ServiceConfig`].
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// TCP listen address (e.g. `127.0.0.1:7171`), or `None` for no TCP.
    pub tcp: Option<String>,
    /// Unix-socket path, or `None` for no Unix listener.
    pub unix: Option<PathBuf>,
    /// Connection worker threads; `0` auto-detects.
    pub threads: usize,
    /// Bounded depth of the pending-connection queue feeding the workers.
    pub queue_capacity: usize,
    /// Close a connection after this much idle time between frames; `0`
    /// disables the idle timeout.
    pub idle_timeout_ms: u64,
    /// Transport-independent service settings.
    pub service: ServiceConfig,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            tcp: None,
            unix: None,
            threads: 0,
            queue_capacity: 64,
            idle_timeout_ms: 30_000,
            service: ServiceConfig::default(),
        }
    }
}

struct Shared {
    service: Service,
    /// Set to stop accepting new connections and ask open connections to
    /// finish their current frame and close.
    draining: AtomicBool,
    idle_timeout: Duration,
    max_request_bytes: usize,
}

/// A running server; dropping it does **not** stop it — call
/// [`Server::shutdown`].
pub struct Server {
    shared: Arc<Shared>,
    pool: WorkerPool,
    accept_threads: Vec<std::thread::JoinHandle<()>>,
    tcp_addr: Option<SocketAddr>,
    unix_path: Option<PathBuf>,
}

impl Server {
    /// Binds the configured listeners and starts accepting connections.
    ///
    /// # Errors
    ///
    /// Returns the I/O error if a listener cannot be bound (address in
    /// use, bad path, permissions).
    pub fn start(config: ServerConfig) -> std::io::Result<Server> {
        let max_request_bytes = config.service.max_request_bytes;
        let shared = Arc::new(Shared {
            service: Service::new(config.service),
            draining: AtomicBool::new(false),
            idle_timeout: Duration::from_millis(config.idle_timeout_ms),
            max_request_bytes,
        });
        let pool = WorkerPool::new(config.threads, config.queue_capacity.max(1));
        let mut accept_threads = Vec::new();
        let mut tcp_addr = None;
        if let Some(addr) = &config.tcp {
            let listener = TcpListener::bind(addr)?;
            listener.set_nonblocking(true)?;
            tcp_addr = Some(listener.local_addr()?);
            accept_threads.push(spawn_acceptor(
                "relogic-serve-tcp-accept",
                listener,
                Arc::clone(&shared),
                pool_handle(&pool),
                |stream: TcpStream, shared| {
                    let _ = stream.set_nodelay(true);
                    serve_connection(stream, &shared);
                },
            ));
        }
        let mut unix_path = None;
        if let Some(path) = &config.unix {
            // A stale socket file from a previous run would make bind fail.
            if path.exists() {
                std::fs::remove_file(path)?;
            }
            let listener = UnixListener::bind(path)?;
            listener.set_nonblocking(true)?;
            unix_path = Some(path.clone());
            accept_threads.push(spawn_acceptor(
                "relogic-serve-unix-accept",
                listener,
                Arc::clone(&shared),
                pool_handle(&pool),
                |stream: UnixStream, shared| serve_connection(stream, &shared),
            ));
        }
        Ok(Server {
            shared,
            pool,
            accept_threads,
            tcp_addr,
            unix_path,
        })
    }

    /// The bound TCP address, if a TCP listener was configured.
    #[must_use]
    pub fn tcp_addr(&self) -> Option<SocketAddr> {
        self.tcp_addr
    }

    /// The bound Unix-socket path, if configured.
    #[must_use]
    pub fn unix_path(&self) -> Option<&PathBuf> {
        self.unix_path.as_ref()
    }

    /// The underlying service (counters, cache — useful in tests).
    #[must_use]
    pub fn service(&self) -> &Service {
        &self.shared.service
    }

    /// True once a drain has been requested.
    #[must_use]
    pub fn is_draining(&self) -> bool {
        self.shared.draining.load(Ordering::SeqCst)
    }

    /// Graceful shutdown: stop accepting, let in-flight frames finish,
    /// join every thread, and unlink the Unix socket.
    pub fn shutdown(self) {
        self.shared.draining.store(true, Ordering::SeqCst);
        for handle in self.accept_threads {
            let _ = handle.join();
        }
        // Queued connections still run; each notices the drain flag after
        // at most one poll interval and closes after its current frame.
        self.pool.shutdown();
        if let Some(path) = &self.unix_path {
            let _ = std::fs::remove_file(path);
        }
    }
}

/// The subset of the pool the acceptors need, cloneable across threads.
/// A cloneable handle that submits boxed jobs to the shared worker pool,
/// blocking when the queue is full (this is the accept-side backpressure).
type Submit = Arc<dyn Fn(Job) + Send + Sync>;

fn pool_handle(pool: &WorkerPool) -> Submit {
    let submitter = pool.submitter();
    Arc::new(move |job| {
        // During shutdown the pool rejects new jobs; the connection is
        // dropped, which closes the socket — correct drain behaviour.
        let _ = submitter.submit_boxed(job);
    })
}

/// Generic accept loop over either listener type.
fn spawn_acceptor<L, S>(
    name: &str,
    listener: L,
    shared: Arc<Shared>,
    submit: Submit,
    handler: fn(S, Arc<Shared>),
) -> std::thread::JoinHandle<()>
where
    L: Accept<Stream = S> + Send + 'static,
    S: Send + 'static,
{
    std::thread::Builder::new()
        .name(name.to_string())
        .spawn(move || loop {
            if shared.draining.load(Ordering::SeqCst) {
                return;
            }
            match listener.accept_stream() {
                Ok(stream) => {
                    shared
                        .service
                        .stats()
                        .connections_accepted
                        .fetch_add(1, Ordering::Relaxed);
                    let conn_shared = Arc::clone(&shared);
                    submit(Box::new(move || handler(stream, conn_shared)));
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(20));
                }
                Err(_) => std::thread::sleep(Duration::from_millis(20)),
            }
        })
        .unwrap_or_else(|e| panic!("failed to spawn acceptor thread: {e}"))
}

/// Uniform non-blocking accept over TCP and Unix listeners.
trait Accept {
    /// The accepted stream type.
    type Stream;
    /// Accepts one pending connection, `WouldBlock` if none.
    fn accept_stream(&self) -> std::io::Result<Self::Stream>;
}

impl Accept for TcpListener {
    type Stream = TcpStream;
    fn accept_stream(&self) -> std::io::Result<TcpStream> {
        self.accept().map(|(s, _)| s)
    }
}

impl Accept for UnixListener {
    type Stream = UnixStream;
    fn accept_stream(&self) -> std::io::Result<UnixStream> {
        self.accept().map(|(s, _)| s)
    }
}

/// A stream the frame loop can drive: read with a poll timeout, write.
trait Connection: Read + Write {
    /// Sets the read timeout used for drain-flag polling.
    fn set_poll_timeout(&self, timeout: Duration) -> std::io::Result<()>;
}

impl Connection for TcpStream {
    fn set_poll_timeout(&self, timeout: Duration) -> std::io::Result<()> {
        self.set_read_timeout(Some(timeout))
    }
}

impl Connection for UnixStream {
    fn set_poll_timeout(&self, timeout: Duration) -> std::io::Result<()> {
        self.set_read_timeout(Some(timeout))
    }
}

/// Runs the NDJSON frame loop on one connection until EOF, idle timeout,
/// drain, or an unrecoverable I/O error.
fn serve_connection<S: Connection>(stream: S, shared: &Arc<Shared>) {
    let stats = shared.service.stats();
    stats.connections_active.fetch_add(1, Ordering::Relaxed);
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        frame_loop(stream, shared);
    }));
    stats.connections_active.fetch_sub(1, Ordering::Relaxed);
    // A panic in the frame loop kills only this connection; the counter
    // stays balanced and the worker thread survives via the pool's own
    // catch_unwind as well.
    drop(result);
}

fn frame_loop<S: Connection>(stream: S, shared: &Arc<Shared>) {
    if stream.set_poll_timeout(POLL_INTERVAL).is_err() {
        return;
    }
    let mut reader = BufReader::new(stream);
    let mut buf: Vec<u8> = Vec::new();
    let mut idle = Duration::ZERO;
    loop {
        if shared.draining.load(Ordering::SeqCst) {
            let line = Response {
                id: None,
                kind: None,
                body: Err(ServeError::ShuttingDown),
            }
            .to_line();
            let _ = reader.get_mut().write_all(line.as_bytes());
            return;
        }
        match read_frame(&mut reader, &mut buf, shared.max_request_bytes) {
            FrameRead::Frame => {
                idle = Duration::ZERO;
                let started = Instant::now();
                let reply = match std::str::from_utf8(&buf) {
                    Ok(text) => {
                        let text = text.trim();
                        if text.is_empty() {
                            buf.clear();
                            continue;
                        }
                        shared.service.handle_line(text)
                    }
                    Err(_) => Response {
                        id: None,
                        kind: None,
                        body: Err(ServeError::BadRequest(
                            "request frame is not valid UTF-8".into(),
                        )),
                    }
                    .to_line(),
                };
                buf.clear();
                if reader.get_mut().write_all(reply.as_bytes()).is_err()
                    || reader.get_mut().flush().is_err()
                {
                    return;
                }
                // Time spent computing doesn't count against idleness.
                let _ = started;
            }
            FrameRead::TooLarge => {
                let line = Response {
                    id: None,
                    kind: None,
                    body: Err(ServeError::TooLarge {
                        limit: shared.max_request_bytes,
                    }),
                }
                .to_line();
                let _ = reader.get_mut().write_all(line.as_bytes());
                // The stream is mid-frame; resynchronising is not worth
                // it — close and let the client reconnect.
                return;
            }
            FrameRead::Eof => return,
            FrameRead::WouldBlock => {
                idle += POLL_INTERVAL;
                if !shared.idle_timeout.is_zero() && idle >= shared.idle_timeout {
                    return;
                }
            }
            FrameRead::Error => return,
        }
    }
}

enum FrameRead {
    /// A full newline-terminated frame is in the buffer.
    Frame,
    /// The frame exceeded the size limit.
    TooLarge,
    /// Clean end of stream (a final unterminated frame is promoted to
    /// `Frame` first if non-empty).
    Eof,
    /// Poll timeout expired with no new bytes.
    WouldBlock,
    /// Unrecoverable I/O error.
    Error,
}

/// Reads until `\n`, EOF, size limit, or poll timeout. Partial data is
/// kept in `buf` across `WouldBlock` returns so slow writers work.
fn read_frame<R: BufRead>(reader: &mut R, buf: &mut Vec<u8>, limit: usize) -> FrameRead {
    loop {
        let available = match reader.fill_buf() {
            Ok(available) => available,
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                return FrameRead::WouldBlock;
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => return FrameRead::Error,
        };
        if available.is_empty() {
            if buf.is_empty() {
                return FrameRead::Eof;
            }
            // Final frame without a trailing newline.
            return FrameRead::Frame;
        }
        let (consume, done) = match available.iter().position(|&b| b == b'\n') {
            Some(pos) => (pos + 1, true),
            None => (available.len(), false),
        };
        if buf.len() + consume > limit {
            reader.consume(consume);
            buf.clear();
            return FrameRead::TooLarge;
        }
        buf.extend_from_slice(&available[..consume]);
        reader.consume(consume);
        if done {
            if buf.last() == Some(&b'\n') {
                buf.pop();
            }
            return FrameRead::Frame;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn read_frame_splits_on_newlines() {
        let mut reader = BufReader::new(Cursor::new(b"one\ntwo\n".to_vec()));
        let mut buf = Vec::new();
        assert!(matches!(
            read_frame(&mut reader, &mut buf, 1024),
            FrameRead::Frame
        ));
        assert_eq!(buf, b"one");
        buf.clear();
        assert!(matches!(
            read_frame(&mut reader, &mut buf, 1024),
            FrameRead::Frame
        ));
        assert_eq!(buf, b"two");
        buf.clear();
        assert!(matches!(
            read_frame(&mut reader, &mut buf, 1024),
            FrameRead::Eof
        ));
    }

    #[test]
    fn read_frame_promotes_trailing_partial_to_frame() {
        let mut reader = BufReader::new(Cursor::new(b"tail".to_vec()));
        let mut buf = Vec::new();
        assert!(matches!(
            read_frame(&mut reader, &mut buf, 1024),
            FrameRead::Frame
        ));
        assert_eq!(buf, b"tail");
    }

    #[test]
    fn read_frame_enforces_the_size_limit() {
        let mut reader = BufReader::new(Cursor::new(vec![b'x'; 64]));
        let mut buf = Vec::new();
        assert!(matches!(
            read_frame(&mut reader, &mut buf, 16),
            FrameRead::TooLarge
        ));
        assert!(buf.is_empty());
    }
}
