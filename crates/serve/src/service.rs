//! The transport-independent request service: parse → cache → execute →
//! encode, with per-request timeouts and counters.
//!
//! [`Service`] owns no sockets; [`crate::server`] feeds it frames from
//! TCP/Unix connections, tests feed it strings directly, and the CLI's
//! `serve` subcommand wraps it in a daemon. It is cheaply cloneable
//! (everything shared lives behind one `Arc`).

use crate::api;
use crate::cache::{ArtifactCache, DiskTier};
use crate::json::Json;
use crate::proto::{self, Request, RequestLimits, Response, ServeError};
use crate::stats::ServiceStats;
use relogic::{CancelToken, GateEps, InputDistribution, ObservabilityMatrix, SweepTape};
use relogic_estimate::EstimatorPolicy;
use relogic_sim::MonteCarloConfig;
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex, MutexGuard, OnceLock};
use std::time::{Duration, Instant};

/// How often the supervisor re-checks the client-disconnect probe while a
/// request is in flight. Bounds how long a cancelled job can outlive its
/// client: the worker is freed within one poll interval plus one engine
/// check interval.
const DISCONNECT_POLL: Duration = Duration::from_millis(100);

/// Service configuration (transport-independent parts).
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Artifact-cache byte budget.
    pub cache_bytes: usize,
    /// Per-request execution timeout in milliseconds; `0` disables the
    /// timeout (requests run inline on the connection worker).
    pub timeout_ms: u64,
    /// Maximum request frame size in bytes.
    pub max_request_bytes: usize,
    /// Request-field validation ceilings.
    pub limits: RequestLimits,
    /// Default worker threads for Monte Carlo requests that ask for
    /// auto-detection (`0` keeps auto-detection).
    pub default_threads: usize,
    /// Maximum analysis requests executing at once; further analysis
    /// frames are shed with an `overloaded` error and a `retry_after_ms`
    /// hint instead of queueing behind saturated workers. `0` disables
    /// admission control. `stats`/`health` are exempt (they must stay
    /// answerable precisely when the service is overloaded).
    pub max_inflight: usize,
    /// Optional on-disk artifact store directory: compiled artifacts are
    /// written through on materialization and read through on cache miss,
    /// so a restarted daemon serves previously-seen circuits without
    /// recomputing them. `None` keeps the cache purely in-memory. A
    /// missing or unusable directory degrades the service to in-memory
    /// operation (loudly, once) instead of failing requests.
    pub cache_dir: Option<PathBuf>,
    /// Optional fault injector threaded through the execution path, the
    /// artifact cache, the worker pool, and connection I/O. Only exists
    /// with the `chaos` feature; release builds carry no injection code.
    #[cfg(feature = "chaos")]
    pub chaos: Option<Arc<relogic_sim::chaos::Chaos>>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            cache_bytes: 256 << 20,
            timeout_ms: 10_000,
            max_request_bytes: 4 << 20,
            limits: RequestLimits::default(),
            default_threads: 0,
            max_inflight: 0,
            cache_dir: None,
            #[cfg(feature = "chaos")]
            chaos: None,
        }
    }
}

struct ServiceInner {
    config: ServiceConfig,
    cache: ArtifactCache,
    stats: ServiceStats,
    started: Instant,
    /// Set once shutdown begins; the server farewells new work and the
    /// `health` kind reports not-ready.
    draining: AtomicBool,
    /// Installed by the server: reports the worker-pool queue depth for
    /// the `health` kind (absent when the service runs without a server,
    /// e.g. in the CLI's one-shot mode).
    queue_probe: OnceLock<Box<dyn Fn() -> usize + Send + Sync>>,
    /// Cancel token of every request currently executing, keyed by a
    /// monotonic registration id. Graceful drain fires them all once the
    /// grace period runs out, so a wedged-slow job cannot hold shutdown
    /// hostage.
    inflight_tokens: Mutex<HashMap<u64, CancelToken>>,
    /// Next registration id for `inflight_tokens`.
    next_token: AtomicU64,
}

impl ServiceInner {
    /// The in-flight token registry; a poisoned lock is recovered (the
    /// map's state is valid after any panic — inserts/removes are atomic).
    fn tokens(&self) -> MutexGuard<'_, HashMap<u64, CancelToken>> {
        match self.inflight_tokens.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// RAII registry entry: unregisters the request's cancel token on drop,
/// whether the request completed, errored, or panicked.
struct TokenRegistration<'a> {
    inner: &'a ServiceInner,
    id: u64,
}

impl Drop for TokenRegistration<'_> {
    fn drop(&mut self) {
        self.inner.tokens().remove(&self.id);
    }
}

/// RAII admission permit: holds one slot of the in-flight gauge.
struct InflightPermit<'a> {
    gauge: &'a AtomicU64,
}

impl Drop for InflightPermit<'_> {
    fn drop(&mut self) {
        self.gauge.fetch_sub(1, Ordering::Relaxed);
    }
}

/// The reliability-analysis service.
#[derive(Clone)]
pub struct Service {
    inner: Arc<ServiceInner>,
}

impl Service {
    /// Creates a service with the given configuration.
    #[must_use]
    pub fn new(config: ServiceConfig) -> Service {
        let disk = config.cache_dir.as_deref().map(|dir| {
            #[allow(unused_mut)]
            let mut tier = DiskTier::open(dir);
            #[cfg(feature = "chaos")]
            if let Some(chaos) = &config.chaos {
                tier.set_chaos(Arc::clone(chaos));
            }
            Arc::new(tier)
        });
        let cache = ArtifactCache::new(config.cache_bytes).with_disk_tier(disk);
        #[cfg(feature = "chaos")]
        let cache = match &config.chaos {
            Some(chaos) => cache.with_chaos(Arc::clone(chaos)),
            None => cache,
        };
        Service {
            inner: Arc::new(ServiceInner {
                config,
                cache,
                stats: ServiceStats::default(),
                started: Instant::now(),
                draining: AtomicBool::new(false),
                queue_probe: OnceLock::new(),
                inflight_tokens: Mutex::new(HashMap::new()),
                next_token: AtomicU64::new(0),
            }),
        }
    }

    /// Registers `token` as in flight until the returned guard drops.
    fn register_token(&self, token: &CancelToken) -> TokenRegistration<'_> {
        let id = self.inner.next_token.fetch_add(1, Ordering::Relaxed);
        self.inner.tokens().insert(id, token.clone());
        TokenRegistration {
            inner: &self.inner,
            id,
        }
    }

    /// Fires the cancel token of every in-flight request and returns how
    /// many were fired. Graceful drain calls this after its grace period:
    /// outstanding work unwinds at the next engine check site with a typed
    /// error instead of wedging shutdown.
    pub fn cancel_inflight(&self) -> usize {
        let tokens = self.inner.tokens();
        for token in tokens.values() {
            token.cancel();
        }
        tokens.len()
    }

    /// How many requests are currently registered as cancellable.
    #[must_use]
    pub fn inflight_token_count(&self) -> usize {
        self.inner.tokens().len()
    }

    /// Marks the service as draining: `health` flips to not-ready and the
    /// server turns away new work. Idempotent.
    pub fn begin_drain(&self) {
        self.inner.draining.store(true, Ordering::SeqCst);
    }

    /// Whether shutdown has begun.
    #[must_use]
    pub fn is_draining(&self) -> bool {
        self.inner.draining.load(Ordering::SeqCst)
    }

    /// Installs the worker-pool queue-depth probe reported by `health`.
    /// The first installation wins; later calls are ignored.
    pub fn install_queue_probe<F>(&self, probe: F)
    where
        F: Fn() -> usize + Send + Sync + 'static,
    {
        let _ = self.inner.queue_probe.set(Box::new(probe));
    }

    /// The configured fault injector, if any.
    #[cfg(feature = "chaos")]
    #[must_use]
    pub fn chaos(&self) -> Option<&Arc<relogic_sim::chaos::Chaos>> {
        self.inner.config.chaos.as_ref()
    }

    /// The backoff hint attached to `overloaded` responses: tracks the
    /// median observed service time (an honest "one request's worth of
    /// breathing room"), clamped to [10 ms, 5 s]; 50 ms before any sample
    /// exists.
    #[must_use]
    pub fn retry_after_hint_ms(&self) -> u64 {
        let latency = &self.inner.stats.latency;
        if latency.count() == 0 {
            return 50;
        }
        (latency.quantile_us(0.5) / 1000).clamp(10, 5000)
    }

    /// Tries to claim an in-flight slot for an analysis request.
    fn admit(&self) -> Option<InflightPermit<'_>> {
        let gauge = &self.inner.stats.inflight;
        let max = u64::try_from(self.inner.config.max_inflight).unwrap_or(u64::MAX);
        if max == 0 {
            gauge.fetch_add(1, Ordering::Relaxed);
            return Some(InflightPermit { gauge });
        }
        gauge
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| {
                if n < max {
                    Some(n + 1)
                } else {
                    None
                }
            })
            .ok()
            .map(|_| InflightPermit { gauge })
    }

    /// The service configuration.
    #[must_use]
    pub fn config(&self) -> &ServiceConfig {
        &self.inner.config
    }

    /// Shared request/connection counters (the server increments the
    /// connection gauges).
    #[must_use]
    pub fn stats(&self) -> &ServiceStats {
        &self.inner.stats
    }

    /// The artifact cache (exposed for tests and counters).
    #[must_use]
    pub fn cache(&self) -> &ArtifactCache {
        &self.inner.cache
    }

    /// Persistence state as reported by `stats`/`health`: `"none"` when no
    /// cache dir is configured, `"degraded"` when the configured dir turned
    /// out to be unusable (the service keeps running from memory), and
    /// `"ready"` otherwise.
    #[must_use]
    pub fn cache_dir_state(&self) -> &'static str {
        match self.inner.cache.disk() {
            None => "none",
            Some(disk) if disk.is_degraded() => "degraded",
            Some(_) => "ready",
        }
    }

    /// Handles one request frame end to end: parse, count, execute under
    /// the configured timeout, record latency, encode. Never panics on any
    /// input.
    #[must_use]
    pub fn handle_line(&self, line: &str) -> String {
        self.handle_line_with_probe(line, None)
    }

    /// Like [`Service::handle_line`], with an optional client-liveness
    /// probe. When the probe reports the client gone mid-request, the
    /// in-flight job's cancel token is fired and the worker is freed
    /// within [`DISCONNECT_POLL`] plus one engine check interval — the
    /// (undeliverable) response is returned for the caller to discard.
    #[must_use]
    pub fn handle_line_with_probe(
        &self,
        line: &str,
        client_gone: Option<&dyn Fn() -> bool>,
    ) -> String {
        let started = Instant::now();
        let (id, parsed) = proto::parse_request(line, &self.inner.config.limits);
        let response = match parsed {
            Ok(request) => {
                self.inner.stats.count_kind(request.kind());
                if request.needs_admission() {
                    match self.admit() {
                        Some(permit) => {
                            let response = self.execute_supervised(id, request, client_gone);
                            drop(permit);
                            response
                        }
                        None => {
                            self.inner.stats.shed.fetch_add(1, Ordering::Relaxed);
                            Response {
                                id,
                                kind: Some(request.kind()),
                                body: Err(ServeError::Overloaded {
                                    retry_after_ms: self.retry_after_hint_ms(),
                                }),
                            }
                        }
                    }
                } else {
                    self.execute_supervised(id, request, client_gone)
                }
            }
            Err(error) => Response {
                id,
                kind: None,
                body: Err(error),
            },
        };
        if response.body.is_err() {
            self.inner.stats.errors.fetch_add(1, Ordering::Relaxed);
        }
        self.inner.stats.latency.record(started.elapsed());
        response.to_line()
    }

    /// Executes a parsed request with no timeout (used by the CLI's
    /// one-shot JSON mode and by the supervisor's runner thread).
    #[must_use]
    pub fn execute(&self, id: Option<Json>, request: Request) -> Response {
        self.execute_cancellable(id, request, &CancelToken::new())
    }

    /// Executes a parsed request under `cancel`, threading the token
    /// through every engine. A fired token surfaces as a typed
    /// `deadline_exceeded` body (counted in `stats.cancelled`); a run that
    /// completes is bit-identical to one executed with a fresh token.
    #[must_use]
    pub fn execute_cancellable(
        &self,
        id: Option<Json>,
        request: Request,
        cancel: &CancelToken,
    ) -> Response {
        let kind = request.kind();
        let body = self.execute_body(&request, cancel);
        if matches!(body, Err(ServeError::DeadlineExceeded { .. })) {
            // The compute path observed the fired token and unwound with
            // a typed error — the "no zombie work" counter.
            self.inner.stats.cancelled.fetch_add(1, Ordering::Relaxed);
        }
        Response {
            id,
            kind: Some(kind),
            body,
        }
    }

    /// Executes a parsed request under the tighter of the client's
    /// `deadline_ms` and the server's `--timeout-ms` cap, watching the
    /// client-liveness probe while the work runs. `stats`/`health` always
    /// run inline (they must stay responsive while workers are saturated).
    ///
    /// Which bound fired decides the wire code: a binding *client*
    /// deadline answers `deadline_exceeded`; the *server* cap keeps the
    /// legacy `timeout` code. Either way the supervisor no longer merely
    /// abandons the runner thread — the request token is armed with the
    /// deadline, so the runner unwinds at its next engine check site.
    #[must_use]
    pub fn execute_supervised(
        &self,
        id: Option<Json>,
        request: Request,
        client_gone: Option<&dyn Fn() -> bool>,
    ) -> Response {
        if matches!(request, Request::Stats | Request::Health) {
            return self.execute(id, request);
        }
        let server_ms = self.inner.config.timeout_ms;
        let request_ms = request.deadline_ms();
        let effective_ms = match (request_ms, server_ms) {
            (Some(r), 0) => Some(r),
            (Some(r), s) => Some(r.min(s)),
            (None, 0) => None,
            (None, s) => Some(s),
        };
        // Whether the *client's* deadline is the binding constraint (it
        // is at least as tight as the server cap).
        let request_binding = match (request_ms, server_ms) {
            (Some(_), 0) => true,
            (Some(r), s) => r <= s,
            (None, _) => false,
        };
        let token = match effective_ms {
            Some(ms) => CancelToken::with_deadline(Duration::from_millis(ms)),
            None => CancelToken::new(),
        };
        let registration = self.register_token(&token);
        if effective_ms.is_none() && client_gone.is_none() {
            // Nothing to supervise: run inline. The token stays
            // registered so graceful drain can still fire it.
            let response = self.execute_cancellable(id, request, &token);
            drop(registration);
            return self.finalize(response, &token, request_binding, server_ms);
        }
        let kind = request.kind();
        let supervisor_id = id.clone();
        let service = self.clone();
        let runner_token = token.clone();
        let (tx, rx) = mpsc::channel();
        // The runner is detached if the supervisor returns first, but the
        // armed token means a runaway analysis now unwinds at its next
        // check site instead of computing to completion for nobody. A
        // panic inside the runner (a bug — or an injected chaos fault) is
        // contained here: it bumps the panic counter and drops `tx`,
        // which the supervisor observes as a disconnect and answers with
        // a typed `internal`.
        std::thread::spawn(move || {
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                service.execute_cancellable(id, request, &runner_token)
            }));
            match outcome {
                Ok(response) => {
                    let _ = tx.send(response);
                }
                Err(_) => {
                    service.inner.stats.panics.fetch_add(1, Ordering::Relaxed);
                }
            }
        });
        let started = Instant::now();
        loop {
            let until_fire =
                effective_ms.map(|ms| Duration::from_millis(ms).saturating_sub(started.elapsed()));
            let slice = match (until_fire, client_gone) {
                (Some(remaining), Some(_)) => remaining.min(DISCONNECT_POLL),
                (Some(remaining), None) => remaining,
                (None, _) => DISCONNECT_POLL,
            };
            match rx.recv_timeout(slice) {
                Ok(response) => {
                    drop(registration);
                    return self.finalize(response, &token, request_binding, server_ms);
                }
                Err(mpsc::RecvTimeoutError::Timeout) => {
                    if let Some(gone) = client_gone {
                        if gone() {
                            // The reply is undeliverable; cancel the job
                            // so the worker frees promptly, and hand back
                            // a response the caller will fail to write.
                            token.cancel();
                            self.inner
                                .stats
                                .disconnect_cancels
                                .fetch_add(1, Ordering::Relaxed);
                            drop(registration);
                            return Response {
                                id: supervisor_id,
                                kind: Some(kind),
                                body: Err(ServeError::Internal(
                                    "client disconnected; request cancelled".into(),
                                )),
                            };
                        }
                    }
                    let deadline_fired = effective_ms
                        .is_some_and(|ms| started.elapsed() >= Duration::from_millis(ms));
                    if deadline_fired {
                        // The deadline armed in the token has fired; the
                        // runner unwinds on its own at the next check
                        // site. Answer now with the code of whichever
                        // bound was binding.
                        drop(registration);
                        let body = if request_binding {
                            self.inner
                                .stats
                                .deadline_exceeded
                                .fetch_add(1, Ordering::Relaxed);
                            Err(ServeError::DeadlineExceeded {
                                after_ms: effective_ms.unwrap_or(0),
                                site: "watchdog",
                            })
                        } else {
                            self.inner.stats.timeouts.fetch_add(1, Ordering::Relaxed);
                            Err(ServeError::Timeout { ms: server_ms })
                        };
                        return Response {
                            id: supervisor_id,
                            kind: Some(kind),
                            body,
                        };
                    }
                }
                Err(mpsc::RecvTimeoutError::Disconnected) => {
                    drop(registration);
                    return Response {
                        id: supervisor_id,
                        kind: Some(kind),
                        body: Err(ServeError::Internal(
                            "request worker died before producing a response".into(),
                        )),
                    };
                }
            }
        }
    }

    /// Attributes a `deadline_exceeded` body produced by the compute path
    /// to its cause: drain cancellation remaps to `shutting_down` (the
    /// request is retryable elsewhere), a binding client deadline keeps
    /// the typed code and counts it, and a binding server cap remaps to
    /// the legacy `timeout` code so pre-deadline clients see the same
    /// wire contract as before.
    fn finalize(
        &self,
        mut response: Response,
        token: &CancelToken,
        request_binding: bool,
        server_ms: u64,
    ) -> Response {
        if matches!(response.body, Err(ServeError::DeadlineExceeded { .. })) {
            let explicit = token.was_cancelled_explicitly();
            if explicit && self.is_draining() {
                response.body = Err(ServeError::ShuttingDown);
            } else if request_binding || explicit {
                self.inner
                    .stats
                    .deadline_exceeded
                    .fetch_add(1, Ordering::Relaxed);
            } else {
                self.inner.stats.timeouts.fetch_add(1, Ordering::Relaxed);
                response.body = Err(ServeError::Timeout { ms: server_ms });
            }
        }
        response
    }

    fn execute_body(&self, request: &Request, cancel: &CancelToken) -> Result<Json, ServeError> {
        #[cfg(feature = "chaos")]
        if request.needs_admission() {
            if let Some(chaos) = &self.inner.config.chaos {
                use relogic_sim::chaos::ChaosSite;
                chaos.maybe_delay(ChaosSite::ExecDelay);
                chaos.maybe_panic(ChaosSite::ExecPanic);
            }
        }
        match request {
            Request::Analyze {
                circuit,
                eps,
                options,
                ..
            } => {
                let (artifact, outcome) = self.inner.cache.get_or_compile(circuit)?;
                let weights = artifact.weights_cancellable(self.inner.cache.counters(), cancel)?;
                let mut result = api::analyze_result_cancellable(
                    artifact.circuit(),
                    weights,
                    eps,
                    options,
                    cancel,
                )?;
                result.push("cache", Json::from(outcome.tag()));
                Ok(result)
            }
            Request::Observability {
                circuit,
                eps,
                per_gate,
                ..
            } => {
                let (artifact, outcome) = self.inner.cache.get_or_compile(circuit)?;
                let observability =
                    artifact.observability_cancellable(self.inner.cache.counters(), cancel)?;
                let mut result =
                    api::observability_result(artifact.circuit(), observability, eps, *per_gate)?;
                result.push("cache", Json::from(outcome.tag()));
                Ok(result)
            }
            Request::MonteCarlo {
                circuit,
                eps,
                patterns,
                seed,
                threads,
                ..
            } => {
                let (artifact, outcome) = self.inner.cache.get_or_compile(circuit)?;
                let config = MonteCarloConfig {
                    patterns: *patterns,
                    seed: *seed,
                    threads: if *threads == 0 {
                        self.inner.config.default_threads
                    } else {
                        *threads
                    },
                    ..MonteCarloConfig::default()
                };
                let tape = artifact.tape(self.inner.cache.counters());
                let mut result = api::monte_carlo_result_tape_cancellable(
                    artifact.circuit(),
                    tape,
                    *eps,
                    &config,
                    cancel,
                )?;
                result.push("cache", Json::from(outcome.tag()));
                Ok(result)
            }
            Request::Estimate {
                circuit,
                eps,
                bdd_node_budget,
                patterns,
                seed,
                ..
            } => {
                let (artifact, outcome) = self.inner.cache.get_or_compile(circuit)?;
                let counters = self.inner.cache.counters();
                let gate_eps =
                    GateEps::try_uniform(artifact.circuit(), *eps).map_err(ServeError::from)?;
                let policy = EstimatorPolicy {
                    bdd_node_budget: *bdd_node_budget,
                    mc_patterns: *patterns,
                    mc_seed: *seed,
                    ..EstimatorPolicy::default()
                };
                let report = relogic_estimate::run_estimate_cancellable(
                    &policy,
                    cancel,
                    |budget| {
                        // An already-materialized observability matrix is
                        // the exact answer for free; a cold artifact runs
                        // the *budgeted* build compute-and-drop, so a
                        // budget trip can never poison the cache slot.
                        if let Some(matrix) = artifact.observability_if_ready() {
                            return Ok(matrix.closed_form(&gate_eps));
                        }
                        ObservabilityMatrix::try_compute_budgeted_cancellable(
                            artifact.circuit(),
                            &InputDistribution::Uniform,
                            self.inner.config.default_threads,
                            budget,
                            cancel,
                        )
                        .map(|m| m.closed_form(&gate_eps))
                    },
                    || {
                        artifact
                            .propagation_estimate_cancellable(counters, cancel)
                            .map(|est| est.closed_form(&gate_eps))
                    },
                    |mc_patterns, mc_seed| {
                        let config = MonteCarloConfig {
                            patterns: mc_patterns,
                            seed: mc_seed,
                            threads: self.inner.config.default_threads,
                            ..MonteCarloConfig::default()
                        };
                        Ok(relogic_sim::try_estimate_cancellable(
                            artifact.circuit(),
                            gate_eps.as_slice(),
                            &config,
                            cancel,
                        )
                        .map_err(relogic::RelogicError::from)?
                        .per_output()
                        .to_vec())
                    },
                )
                .map_err(ServeError::from)?;
                self.inner.stats.record_tiers(&report.diagnostics);
                let mut result = api::estimate_result(artifact.circuit(), *eps, &report);
                result.push("cache", Json::from(outcome.tag()));
                Ok(result)
            }
            Request::Harden {
                circuit,
                eps,
                area_budget,
                max_steps,
                ..
            } => {
                let (artifact, outcome) = self.inner.cache.get_or_compile(circuit)?;
                let report = relogic_estimate::harden_cancellable(
                    artifact.circuit(),
                    &InputDistribution::Uniform,
                    *eps,
                    *area_budget,
                    *max_steps,
                    cancel,
                )
                .map_err(ServeError::from)?;
                let mut result =
                    api::harden_result(artifact.circuit(), *eps, *area_budget, &report);
                result.push("cache", Json::from(outcome.tag()));
                Ok(result)
            }
            Request::CriticalEps {
                circuit,
                threshold,
                metric,
                max_steps,
                ..
            } => {
                let (artifact, outcome) = self.inner.cache.get_or_compile(circuit)?;
                let weights = artifact.weights_cancellable(self.inner.cache.counters(), cancel)?;
                let tape =
                    SweepTape::try_new(artifact.circuit(), weights).map_err(ServeError::from)?;
                let report = relogic_estimate::critical_eps_cancellable(
                    artifact.circuit(),
                    &tape,
                    *metric,
                    *threshold,
                    *max_steps,
                    cancel,
                )
                .map_err(ServeError::from)?;
                let mut result = api::critical_eps_result(artifact.circuit(), &report);
                result.push("cache", Json::from(outcome.tag()));
                Ok(result)
            }
            Request::Stats => Ok(self.stats_json()),
            Request::Health => Ok(self.health_json()),
        }
    }

    /// The `health` result object: readiness (not draining), the drain
    /// flag, the in-flight gauge against its limit, worker-pool queue
    /// depth, shed count, and active connections.
    #[must_use]
    pub fn health_json(&self) -> Json {
        let stats = &self.inner.stats;
        let draining = self.is_draining();
        let queue_depth = self.inner.queue_probe.get().map_or(0, |probe| probe());
        Json::obj([
            ("ready", Json::from(!draining)),
            ("draining", Json::from(draining)),
            (
                "inflight",
                Json::from(stats.inflight.load(Ordering::Relaxed)),
            ),
            ("max_inflight", Json::from(self.inner.config.max_inflight)),
            ("queue_depth", Json::from(queue_depth)),
            ("shed", Json::from(stats.shed.load(Ordering::Relaxed))),
            (
                "cancelled",
                Json::from(stats.cancelled.load(Ordering::Relaxed)),
            ),
            (
                "deadline_exceeded",
                Json::from(stats.deadline_exceeded.load(Ordering::Relaxed)),
            ),
            (
                "disconnect_cancels",
                Json::from(stats.disconnect_cancels.load(Ordering::Relaxed)),
            ),
            (
                "estimator_fallbacks",
                Json::from(stats.estimator_fallbacks.load(Ordering::Relaxed)),
            ),
            ("cache_dir", Json::from(self.cache_dir_state())),
            (
                "connections_active",
                Json::from(stats.connections_active.load(Ordering::Relaxed)),
            ),
            (
                "uptime_ms",
                Json::from(
                    u64::try_from(self.inner.started.elapsed().as_millis()).unwrap_or(u64::MAX),
                ),
            ),
        ])
    }

    /// The `stats` result object: per-kind request counters, cache
    /// counters, and service-time percentiles.
    #[must_use]
    pub fn stats_json(&self) -> Json {
        let stats = &self.inner.stats;
        let counters = self.inner.cache.counters();
        let (entries, bytes) = self.inner.cache.usage();
        Json::obj([
            (
                "uptime_ms",
                Json::from(
                    u64::try_from(self.inner.started.elapsed().as_millis()).unwrap_or(u64::MAX),
                ),
            ),
            ("requests", stats.requests_json()),
            ("errors", Json::from(stats.errors.load(Ordering::Relaxed))),
            (
                "timeouts",
                Json::from(stats.timeouts.load(Ordering::Relaxed)),
            ),
            ("shed", Json::from(stats.shed.load(Ordering::Relaxed))),
            ("panics", Json::from(stats.panics.load(Ordering::Relaxed))),
            ("cancellation", stats.cancellation_json()),
            (
                "inflight",
                Json::from(stats.inflight.load(Ordering::Relaxed)),
            ),
            (
                "connections",
                Json::obj([
                    (
                        "accepted",
                        Json::from(stats.connections_accepted.load(Ordering::Relaxed)),
                    ),
                    (
                        "active",
                        Json::from(stats.connections_active.load(Ordering::Relaxed)),
                    ),
                ]),
            ),
            (
                "cache",
                Json::obj([
                    ("entries", Json::from(entries)),
                    ("bytes", Json::from(bytes)),
                    ("budget_bytes", Json::from(self.inner.cache.budget_bytes())),
                    ("hits", Json::from(counters.hits.load(Ordering::Relaxed))),
                    (
                        "misses",
                        Json::from(counters.misses.load(Ordering::Relaxed)),
                    ),
                    (
                        "evictions",
                        Json::from(counters.evictions.load(Ordering::Relaxed)),
                    ),
                    (
                        "uncacheable",
                        Json::from(counters.uncacheable.load(Ordering::Relaxed)),
                    ),
                    (
                        "circuits_parsed",
                        Json::from(counters.circuits_parsed.load(Ordering::Relaxed)),
                    ),
                    (
                        "weights_computed",
                        Json::from(counters.weights_computed.load(Ordering::Relaxed)),
                    ),
                    (
                        "observability_computed",
                        Json::from(counters.observability_computed.load(Ordering::Relaxed)),
                    ),
                    (
                        "tapes_compiled",
                        Json::from(counters.tapes_compiled.load(Ordering::Relaxed)),
                    ),
                    (
                        "estimates_computed",
                        Json::from(counters.estimates_computed.load(Ordering::Relaxed)),
                    ),
                ]),
            ),
            ("estimator", stats.estimator_json()),
            ("cache_dir", Json::from(self.cache_dir_state())),
            ("disk", {
                let snapshot = self
                    .inner
                    .cache
                    .disk()
                    .map(|disk| disk.counters())
                    .unwrap_or_default();
                let bytes = self
                    .inner
                    .cache
                    .disk()
                    .map_or(0, |disk| disk.bytes_on_disk());
                Json::obj([
                    ("disk_hits", Json::from(snapshot.hits)),
                    ("disk_misses", Json::from(snapshot.misses)),
                    ("corrupt_quarantined", Json::from(snapshot.quarantined)),
                    ("disk_writes", Json::from(snapshot.writes)),
                    ("bytes_on_disk", Json::from(bytes)),
                ])
            }),
            (
                "bdd_engine",
                Json::obj([
                    (
                        "runs",
                        Json::from(counters.bdd_engine.runs.load(Ordering::Relaxed)),
                    ),
                    (
                        "peak_live_nodes",
                        Json::from(counters.bdd_engine.peak_live_nodes.load(Ordering::Relaxed)),
                    ),
                    ("unique_load", Json::from(counters.bdd_engine.unique_load())),
                    (
                        "cache_hits",
                        Json::from(counters.bdd_engine.cache_hits.load(Ordering::Relaxed)),
                    ),
                    (
                        "cache_misses",
                        Json::from(counters.bdd_engine.cache_misses.load(Ordering::Relaxed)),
                    ),
                    (
                        "cache_hit_rate",
                        Json::from(counters.bdd_engine.cache_hit_rate()),
                    ),
                    (
                        "gc_runs",
                        Json::from(counters.bdd_engine.gc_runs.load(Ordering::Relaxed)),
                    ),
                    (
                        "reorders",
                        Json::from(counters.bdd_engine.reorders.load(Ordering::Relaxed)),
                    ),
                ]),
            ),
            ("latency_us", stats.latency.to_json()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SMALL: &str = "INPUT(a)\\nINPUT(b)\\nOUTPUT(y)\\nt = NAND(a, b)\\ny = NOT(t)\\n";

    fn service() -> Service {
        Service::new(ServiceConfig {
            timeout_ms: 0,
            ..ServiceConfig::default()
        })
    }

    fn analyze_frame(extra: &str) -> String {
        format!(r#"{{"kind":"analyze","netlist":"{SMALL}"{extra}}}"#)
    }

    #[test]
    fn analyze_round_trip_and_cache_tagging() {
        let svc = service();
        let first = svc.handle_line(&analyze_frame(r#","eps":0.1,"id":1"#));
        assert!(first.contains("\"ok\":true"), "{first}");
        assert!(first.contains("\"cache\":\"miss\""), "{first}");
        assert!(first.contains("\"id\":1"), "{first}");
        let second = svc.handle_line(&analyze_frame(r#","eps":0.1,"id":2"#));
        assert!(second.contains("\"cache\":\"hit\""), "{second}");
        // Identical payloads modulo id/cache tag.
        let strip = |s: &str| {
            s.replace("\"cache\":\"hit\"", "")
                .replace("\"cache\":\"miss\"", "")
                .replace("\"id\":1,", "")
                .replace("\"id\":2,", "")
        };
        assert_eq!(strip(&first), strip(&second));
    }

    #[test]
    fn stats_request_reports_counters() {
        let svc = service();
        let _ = svc.handle_line(&analyze_frame(""));
        let _ = svc.handle_line(&analyze_frame(""));
        let _ = svc.handle_line("garbage");
        let stats = svc.handle_line(r#"{"kind":"stats"}"#);
        let doc = crate::json::parse(stats.trim()).unwrap();
        let result = doc.get("result").unwrap();
        let requests = result.get("requests").unwrap();
        assert_eq!(requests.get("analyze").and_then(Json::as_u64), Some(2));
        assert_eq!(result.get("errors").and_then(Json::as_u64), Some(1));
        let cache = result.get("cache").unwrap();
        assert_eq!(cache.get("hits").and_then(Json::as_u64), Some(1));
        assert_eq!(
            cache.get("weights_computed").and_then(Json::as_u64),
            Some(1)
        );
        assert!(result.get("latency_us").unwrap().get("count").is_some());
    }

    #[test]
    fn malformed_lines_never_panic_and_return_typed_errors() {
        let svc = service();
        for line in ["", "{", "[]", "\"x\"", "{\"kind\":\"zap\"}", "{\"kind\":1}"] {
            let out = svc.handle_line(line);
            assert!(out.contains("\"ok\":false"), "{line} -> {out}");
            assert!(out.contains("\"code\":\"bad_request\""), "{line} -> {out}");
        }
    }

    #[test]
    fn timeouts_produce_typed_errors() {
        let svc = Service::new(ServiceConfig {
            timeout_ms: 1,
            ..ServiceConfig::default()
        });
        // A large MC budget cannot finish in 1 ms.
        let out = svc.handle_line(&format!(
            r#"{{"kind":"monte_carlo","netlist":"{SMALL}","patterns":400000000,"threads":1}}"#
        ));
        assert!(out.contains("\"code\":\"timeout\""), "{out}");
        assert_eq!(svc.stats().timeouts.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn request_deadline_produces_deadline_exceeded_and_counters() {
        // No server cap: the client's deadline is the binding bound.
        let svc = service();
        let out = svc.handle_line(&format!(
            r#"{{"kind":"monte_carlo","netlist":"{SMALL}","patterns":400000000,"threads":1,"deadline_ms":1,"id":7}}"#
        ));
        assert!(out.contains("\"code\":\"deadline_exceeded\""), "{out}");
        assert!(out.contains("\"id\":7"), "{out}");
        assert_eq!(svc.stats().deadline_exceeded.load(Ordering::Relaxed), 1);
        assert_eq!(
            svc.stats().timeouts.load(Ordering::Relaxed),
            0,
            "a client deadline must not masquerade as a server timeout"
        );
        // The runner observes the fired token and unwinds with a typed
        // error — the cancelled counter ticks once the worker is free.
        let deadline = Instant::now() + Duration::from_secs(10);
        while svc.stats().cancelled.load(Ordering::Relaxed) == 0 {
            assert!(
                Instant::now() < deadline,
                "runner never observed the cancel"
            );
            std::thread::sleep(Duration::from_millis(10));
        }
        assert_eq!(svc.stats().cancelled.load(Ordering::Relaxed), 1);
        // The counters surface in stats and health.
        let stats = svc.handle_line(r#"{"kind":"stats"}"#);
        let doc = crate::json::parse(stats.trim()).unwrap();
        let cancellation = doc.get("result").unwrap().get("cancellation").unwrap();
        assert_eq!(
            cancellation.get("deadline_exceeded").and_then(Json::as_u64),
            Some(1)
        );
        assert_eq!(
            cancellation.get("cancelled").and_then(Json::as_u64),
            Some(1)
        );
        let health = svc.handle_line(r#"{"kind":"health"}"#);
        let doc = crate::json::parse(health.trim()).unwrap();
        let result = doc.get("result").unwrap();
        assert_eq!(result.get("cancelled").and_then(Json::as_u64), Some(1));
        assert_eq!(
            result.get("deadline_exceeded").and_then(Json::as_u64),
            Some(1)
        );
        assert_eq!(
            result.get("disconnect_cancels").and_then(Json::as_u64),
            Some(0)
        );
    }

    #[test]
    fn deadline_tighter_than_server_cap_wins_and_keeps_its_code() {
        let svc = Service::new(ServiceConfig {
            timeout_ms: 60_000,
            ..ServiceConfig::default()
        });
        let out = svc.handle_line(&format!(
            r#"{{"kind":"monte_carlo","netlist":"{SMALL}","patterns":400000000,"threads":1,"deadline_ms":1}}"#
        ));
        assert!(out.contains("\"code\":\"deadline_exceeded\""), "{out}");
        assert_eq!(svc.stats().timeouts.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn completed_under_deadline_is_bit_identical_to_undeadlined() {
        // Same seed, different thread counts, one bounded by a generous
        // deadline: all three answers must be byte-identical modulo the
        // cache tag. The token is a read-only early-exit — it never
        // perturbs the RNG stream or the merge order.
        let svc = service();
        let run = |threads: usize, deadline: &str| {
            svc.handle_line(&format!(
                r#"{{"kind":"monte_carlo","netlist":"{SMALL}","patterns":4096,"seed":5,"threads":{threads}{deadline}}}"#
            ))
            .replace("\"cache\":\"miss\"", "")
            .replace("\"cache\":\"hit\"", "")
        };
        let plain = run(2, "");
        let deadlined = run(2, r#","deadline_ms":60000"#);
        let deadlined_wide = run(7, r#","deadline_ms":60000"#);
        assert_eq!(plain, deadlined);
        assert_eq!(plain, deadlined_wide);
    }

    #[test]
    fn deadline_vs_completion_race_yields_exactly_one_outcome() {
        // A deadline sized near the actual runtime: whichever side wins,
        // the client sees exactly one of `ok` or `deadline_exceeded` —
        // never a partial result, never a mixed frame.
        let svc = service();
        for round in 0..8u32 {
            let out = svc.handle_line(&format!(
                r#"{{"kind":"monte_carlo","netlist":"{SMALL}","patterns":300000,"threads":1,"deadline_ms":{}}}"#,
                1 + round % 3
            ));
            let doc = crate::json::parse(out.trim()).unwrap();
            let ok = doc.get("ok").and_then(Json::as_bool).unwrap();
            if ok {
                assert!(doc.get("result").unwrap().get("delta").is_some(), "{out}");
            } else {
                let code = doc
                    .get("error")
                    .unwrap()
                    .get("code")
                    .and_then(Json::as_str)
                    .unwrap()
                    .to_string();
                assert_eq!(code, "deadline_exceeded", "{out}");
            }
        }
    }

    #[test]
    fn cancelled_estimate_reports_deadline_not_a_fallback() {
        // A fired token must unwind the estimator, not degrade it to a
        // cheaper tier: cancellation is an answer's absence, not an
        // approximation license.
        let svc = service();
        let (id, parsed) = proto::parse_request(
            &format!(r#"{{"kind":"estimate","netlist":"{SMALL}","eps":0.1}}"#),
            &RequestLimits::default(),
        );
        let token = CancelToken::new();
        token.cancel();
        let response = svc.execute_cancellable(id, parsed.unwrap(), &token);
        match response.body {
            Err(ServeError::DeadlineExceeded { .. }) => {}
            other => panic!("expected deadline_exceeded, got {other:?}"),
        }
        assert_eq!(svc.stats().tier_propagation.load(Ordering::Relaxed), 0);
        assert_eq!(svc.stats().cancelled.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn drain_cancel_remaps_to_shutting_down_and_frees_the_worker() {
        // A wedged-slow job under graceful drain: firing the in-flight
        // tokens unwinds it promptly, and the reply says "shutting_down"
        // (retryable elsewhere), not "deadline_exceeded".
        let svc = service();
        let worker = {
            let svc = svc.clone();
            std::thread::spawn(move || {
                svc.handle_line(&format!(
                    r#"{{"kind":"monte_carlo","netlist":"{SMALL}","patterns":400000000,"threads":1}}"#
                ))
            })
        };
        // Wait for the request to register its token.
        let deadline = Instant::now() + Duration::from_secs(10);
        while svc.inflight_token_count() == 0 {
            assert!(
                Instant::now() < deadline,
                "request never registered a token"
            );
            std::thread::sleep(Duration::from_millis(5));
        }
        svc.begin_drain();
        assert_eq!(svc.cancel_inflight(), 1);
        let out = worker.join().unwrap();
        assert!(out.contains("\"code\":\"shutting_down\""), "{out}");
        assert_eq!(svc.inflight_token_count(), 0, "token unregistered");
        assert_eq!(svc.stats().cancelled.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn health_reports_readiness_and_flips_on_drain() {
        let svc = service();
        svc.install_queue_probe(|| 3);
        let out = svc.handle_line(r#"{"kind":"health","id":"h1"}"#);
        let doc = crate::json::parse(out.trim()).unwrap();
        assert_eq!(doc.get("ok").and_then(Json::as_bool), Some(true));
        let result = doc.get("result").unwrap();
        assert_eq!(result.get("ready").and_then(Json::as_bool), Some(true));
        assert_eq!(result.get("draining").and_then(Json::as_bool), Some(false));
        assert_eq!(result.get("queue_depth").and_then(Json::as_u64), Some(3));
        assert_eq!(result.get("inflight").and_then(Json::as_u64), Some(0));
        svc.begin_drain();
        let out = svc.handle_line(r#"{"kind":"health"}"#);
        let doc = crate::json::parse(out.trim()).unwrap();
        let result = doc.get("result").unwrap();
        assert_eq!(result.get("ready").and_then(Json::as_bool), Some(false));
        assert_eq!(result.get("draining").and_then(Json::as_bool), Some(true));
        assert_eq!(svc.stats().health.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn admission_sheds_analysis_but_not_stats_or_health() {
        let svc = Service::new(ServiceConfig {
            timeout_ms: 0,
            max_inflight: 1,
            ..ServiceConfig::default()
        });
        // Occupy the only slot directly through the gauge; the next
        // analysis frame must be shed with a retry hint while stats and
        // health stay answerable.
        svc.stats().inflight.fetch_add(1, Ordering::Relaxed);
        let out = svc.handle_line(&analyze_frame(r#","id":9"#));
        assert!(out.contains("\"code\":\"overloaded\""), "{out}");
        assert!(out.contains("\"retry_after_ms\""), "{out}");
        assert!(out.contains("\"id\":9"), "{out}");
        assert_eq!(svc.stats().shed.load(Ordering::Relaxed), 1);
        let stats = svc.handle_line(r#"{"kind":"stats"}"#);
        assert!(stats.contains("\"ok\":true"), "{stats}");
        assert!(stats.contains("\"shed\":1"), "{stats}");
        let health = svc.handle_line(r#"{"kind":"health"}"#);
        assert!(health.contains("\"ok\":true"), "{health}");
        // Release the slot: analysis admits again and the permit is
        // returned after execution.
        svc.stats().inflight.fetch_sub(1, Ordering::Relaxed);
        let out = svc.handle_line(&analyze_frame(""));
        assert!(out.contains("\"ok\":true"), "{out}");
        assert_eq!(svc.stats().inflight.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn estimate_tiers_are_reported_and_fallbacks_are_never_silent() {
        let svc = service();
        // Default budget: the two-gate circuit fits the exact tier.
        let out = svc.handle_line(&format!(
            r#"{{"kind":"estimate","netlist":"{SMALL}","eps":0.1,"id":1}}"#
        ));
        assert!(out.contains("\"ok\":true"), "{out}");
        assert!(out.contains("\"tier\":\"exact\""), "{out}");
        // Budget 0 disables the exact tier: the answer degrades to the
        // propagation tier and says so.
        let out = svc.handle_line(&format!(
            r#"{{"kind":"estimate","netlist":"{SMALL}","eps":0.1,"bdd_node_budget":0}}"#
        ));
        assert!(out.contains("\"tier\":\"propagation\""), "{out}");
        assert!(out.contains("\"estimator_fallbacks\":1"), "{out}");
        // The fallback is visible in stats and health.
        let stats = svc.handle_line(r#"{"kind":"stats"}"#);
        let doc = crate::json::parse(stats.trim()).unwrap();
        let estimator = doc.get("result").unwrap().get("estimator").unwrap();
        assert_eq!(estimator.get("tier_exact").and_then(Json::as_u64), Some(1));
        assert_eq!(
            estimator.get("tier_propagation").and_then(Json::as_u64),
            Some(1)
        );
        assert_eq!(estimator.get("fallbacks").and_then(Json::as_u64), Some(1));
        let requests = doc.get("result").unwrap().get("requests").unwrap();
        assert_eq!(requests.get("estimate").and_then(Json::as_u64), Some(2));
        let health = svc.handle_line(r#"{"kind":"health"}"#);
        let doc = crate::json::parse(health.trim()).unwrap();
        assert_eq!(
            doc.get("result")
                .unwrap()
                .get("estimator_fallbacks")
                .and_then(Json::as_u64),
            Some(1)
        );
    }

    #[test]
    fn estimate_exact_tier_matches_observability_closed_form() {
        let svc = service();
        let obs = svc.handle_line(&format!(
            r#"{{"kind":"observability","netlist":"{SMALL}","eps":0.1}}"#
        ));
        let est = svc.handle_line(&format!(
            r#"{{"kind":"estimate","netlist":"{SMALL}","eps":0.1}}"#
        ));
        let delta_of = |line: &str| {
            let doc = crate::json::parse(line.trim()).unwrap();
            let result = doc.get("result").unwrap().clone();
            match result.get("points") {
                Some(points) => points.as_array().unwrap()[0].get("delta").unwrap().encode(),
                None => result.get("delta").unwrap().encode(),
            }
        };
        assert_eq!(delta_of(&obs), delta_of(&est));
    }

    #[test]
    fn harden_round_trip_reports_a_front() {
        let svc = service();
        let out = svc.handle_line(&format!(
            r#"{{"kind":"harden","netlist":"{SMALL}","eps":0.1,"area_budget":20}}"#
        ));
        let doc = crate::json::parse(out.trim()).unwrap();
        assert_eq!(doc.get("ok").and_then(Json::as_bool), Some(true), "{out}");
        let result = doc.get("result").unwrap();
        let baseline = result.get("baseline").unwrap();
        assert_eq!(baseline.get("protected").and_then(Json::as_u64), Some(0));
        let front = result.get("front").and_then(Json::as_array).unwrap();
        assert!(!front.is_empty());
        assert!(!result
            .get("evaluated")
            .and_then(Json::as_array)
            .unwrap()
            .is_empty());
        assert_eq!(
            result
                .get("ranking")
                .and_then(Json::as_array)
                .map(<[Json]>::len),
            Some(2),
            "both gates ranked"
        );
    }

    #[test]
    fn critical_eps_bisects_the_two_gate_chain() {
        let svc = service();
        let frame = format!(
            r#"{{"kind":"critical_eps","netlist":"{SMALL}","threshold":0.2,"metric":"max"}}"#
        );
        let out = svc.handle_line(&frame);
        let doc = crate::json::parse(out.trim()).unwrap();
        assert_eq!(doc.get("ok").and_then(Json::as_bool), Some(true), "{out}");
        let result = doc.get("result").unwrap();
        assert_eq!(result.get("crossed").and_then(Json::as_bool), Some(true));
        // Two noisy gates in series: δ(ε) = ½(1 − (1−2ε)²) = 0.2 at
        // ε = (1 − √0.6)/2.
        let expected = 0.5 * (1.0 - 0.6f64.sqrt());
        let critical = result.get("critical").and_then(Json::as_f64).unwrap();
        assert!((critical - expected).abs() < 1e-9, "critical = {critical}");
        // Deterministic across repeats (modulo the cache tag).
        assert_eq!(
            out.replace("\"cache\":\"miss\"", ""),
            svc.handle_line(&frame).replace("\"cache\":\"hit\"", "")
        );
    }

    #[test]
    fn monte_carlo_is_deterministic_through_the_service() {
        let svc = service();
        let frame = format!(
            r#"{{"kind":"monte_carlo","netlist":"{SMALL}","patterns":4096,"seed":3,"threads":2}}"#
        );
        let a = svc.handle_line(&frame);
        let b = svc.handle_line(&frame);
        // First run is a cache miss, second a hit; estimates identical.
        assert_eq!(
            a.replace("\"cache\":\"miss\"", ""),
            b.replace("\"cache\":\"hit\"", "")
        );
    }
}
