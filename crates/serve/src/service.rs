//! The transport-independent request service: parse → cache → execute →
//! encode, with per-request timeouts and counters.
//!
//! [`Service`] owns no sockets; [`crate::server`] feeds it frames from
//! TCP/Unix connections, tests feed it strings directly, and the CLI's
//! `serve` subcommand wraps it in a daemon. It is cheaply cloneable
//! (everything shared lives behind one `Arc`).

use crate::api;
use crate::cache::ArtifactCache;
use crate::json::Json;
use crate::proto::{self, Request, RequestLimits, Response, ServeError};
use crate::stats::ServiceStats;
use relogic_sim::MonteCarloConfig;
use std::sync::atomic::Ordering;
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

/// Service configuration (transport-independent parts).
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Artifact-cache byte budget.
    pub cache_bytes: usize,
    /// Per-request execution timeout in milliseconds; `0` disables the
    /// timeout (requests run inline on the connection worker).
    pub timeout_ms: u64,
    /// Maximum request frame size in bytes.
    pub max_request_bytes: usize,
    /// Request-field validation ceilings.
    pub limits: RequestLimits,
    /// Default worker threads for Monte Carlo requests that ask for
    /// auto-detection (`0` keeps auto-detection).
    pub default_threads: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            cache_bytes: 256 << 20,
            timeout_ms: 10_000,
            max_request_bytes: 4 << 20,
            limits: RequestLimits::default(),
            default_threads: 0,
        }
    }
}

struct ServiceInner {
    config: ServiceConfig,
    cache: ArtifactCache,
    stats: ServiceStats,
    started: Instant,
}

/// The reliability-analysis service.
#[derive(Clone)]
pub struct Service {
    inner: Arc<ServiceInner>,
}

impl Service {
    /// Creates a service with the given configuration.
    #[must_use]
    pub fn new(config: ServiceConfig) -> Service {
        let cache = ArtifactCache::new(config.cache_bytes);
        Service {
            inner: Arc::new(ServiceInner {
                config,
                cache,
                stats: ServiceStats::default(),
                started: Instant::now(),
            }),
        }
    }

    /// The service configuration.
    #[must_use]
    pub fn config(&self) -> &ServiceConfig {
        &self.inner.config
    }

    /// Shared request/connection counters (the server increments the
    /// connection gauges).
    #[must_use]
    pub fn stats(&self) -> &ServiceStats {
        &self.inner.stats
    }

    /// The artifact cache (exposed for tests and counters).
    #[must_use]
    pub fn cache(&self) -> &ArtifactCache {
        &self.inner.cache
    }

    /// Handles one request frame end to end: parse, count, execute under
    /// the configured timeout, record latency, encode. Never panics on any
    /// input.
    #[must_use]
    pub fn handle_line(&self, line: &str) -> String {
        let started = Instant::now();
        let (id, parsed) = proto::parse_request(line, &self.inner.config.limits);
        let response = match parsed {
            Ok(request) => {
                self.inner.stats.count_kind(request.kind());
                self.execute_with_timeout(id, request)
            }
            Err(error) => Response {
                id,
                kind: None,
                body: Err(error),
            },
        };
        if response.body.is_err() {
            self.inner.stats.errors.fetch_add(1, Ordering::Relaxed);
        }
        self.inner.stats.latency.record(started.elapsed());
        response.to_line()
    }

    /// Executes a parsed request with no timeout (used by the CLI's
    /// one-shot JSON mode and by the timeout worker).
    #[must_use]
    pub fn execute(&self, id: Option<Json>, request: Request) -> Response {
        let kind = request.kind();
        let body = self.execute_body(&request);
        Response {
            id,
            kind: Some(kind),
            body,
        }
    }

    /// Executes a parsed request, bounding analysis kinds by the
    /// configured per-request timeout. `stats` requests always run inline
    /// (they must stay responsive while workers are saturated).
    #[must_use]
    pub fn execute_with_timeout(&self, id: Option<Json>, request: Request) -> Response {
        let timeout_ms = self.inner.config.timeout_ms;
        if timeout_ms == 0 || matches!(request, Request::Stats) {
            return self.execute(id, request);
        }
        let kind = request.kind();
        let timeout_id = id.clone();
        let service = self.clone();
        let (tx, rx) = mpsc::channel();
        // The runner is detached on timeout: a runaway analysis finishes
        // (or dies) on its own thread and its result is discarded. The
        // thread count is bounded by the connection pool width times the
        // rare timeout events, not by request volume.
        std::thread::spawn(move || {
            let _ = tx.send(service.execute(id, request));
        });
        match rx.recv_timeout(Duration::from_millis(timeout_ms)) {
            Ok(response) => response,
            Err(mpsc::RecvTimeoutError::Timeout) => {
                self.inner.stats.timeouts.fetch_add(1, Ordering::Relaxed);
                Response {
                    id: timeout_id,
                    kind: Some(kind),
                    body: Err(ServeError::Timeout { ms: timeout_ms }),
                }
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => Response {
                id: timeout_id,
                kind: Some(kind),
                body: Err(ServeError::Internal(
                    "request worker died before producing a response".into(),
                )),
            },
        }
    }

    fn execute_body(&self, request: &Request) -> Result<Json, ServeError> {
        match request {
            Request::Analyze {
                circuit,
                eps,
                options,
            } => {
                let (artifact, outcome) = self.inner.cache.get_or_compile(circuit)?;
                let weights = artifact.weights(self.inner.cache.counters())?;
                let mut result = api::analyze_result(artifact.circuit(), weights, eps, options)?;
                result.push("cache", Json::from(outcome.tag()));
                Ok(result)
            }
            Request::Observability {
                circuit,
                eps,
                per_gate,
            } => {
                let (artifact, outcome) = self.inner.cache.get_or_compile(circuit)?;
                let observability = artifact.observability(self.inner.cache.counters())?;
                let mut result =
                    api::observability_result(artifact.circuit(), observability, eps, *per_gate)?;
                result.push("cache", Json::from(outcome.tag()));
                Ok(result)
            }
            Request::MonteCarlo {
                circuit,
                eps,
                patterns,
                seed,
                threads,
            } => {
                let (artifact, outcome) = self.inner.cache.get_or_compile(circuit)?;
                let config = MonteCarloConfig {
                    patterns: *patterns,
                    seed: *seed,
                    threads: if *threads == 0 {
                        self.inner.config.default_threads
                    } else {
                        *threads
                    },
                    ..MonteCarloConfig::default()
                };
                let mut result = api::monte_carlo_result(artifact.circuit(), *eps, &config)?;
                result.push("cache", Json::from(outcome.tag()));
                Ok(result)
            }
            Request::Stats => Ok(self.stats_json()),
        }
    }

    /// The `stats` result object: per-kind request counters, cache
    /// counters, and service-time percentiles.
    #[must_use]
    pub fn stats_json(&self) -> Json {
        let stats = &self.inner.stats;
        let counters = self.inner.cache.counters();
        let (entries, bytes) = self.inner.cache.usage();
        Json::obj([
            (
                "uptime_ms",
                Json::from(
                    u64::try_from(self.inner.started.elapsed().as_millis()).unwrap_or(u64::MAX),
                ),
            ),
            ("requests", stats.requests_json()),
            ("errors", Json::from(stats.errors.load(Ordering::Relaxed))),
            (
                "timeouts",
                Json::from(stats.timeouts.load(Ordering::Relaxed)),
            ),
            (
                "connections",
                Json::obj([
                    (
                        "accepted",
                        Json::from(stats.connections_accepted.load(Ordering::Relaxed)),
                    ),
                    (
                        "active",
                        Json::from(stats.connections_active.load(Ordering::Relaxed)),
                    ),
                ]),
            ),
            (
                "cache",
                Json::obj([
                    ("entries", Json::from(entries)),
                    ("bytes", Json::from(bytes)),
                    ("budget_bytes", Json::from(self.inner.cache.budget_bytes())),
                    ("hits", Json::from(counters.hits.load(Ordering::Relaxed))),
                    (
                        "misses",
                        Json::from(counters.misses.load(Ordering::Relaxed)),
                    ),
                    (
                        "evictions",
                        Json::from(counters.evictions.load(Ordering::Relaxed)),
                    ),
                    (
                        "uncacheable",
                        Json::from(counters.uncacheable.load(Ordering::Relaxed)),
                    ),
                    (
                        "circuits_parsed",
                        Json::from(counters.circuits_parsed.load(Ordering::Relaxed)),
                    ),
                    (
                        "weights_computed",
                        Json::from(counters.weights_computed.load(Ordering::Relaxed)),
                    ),
                    (
                        "observability_computed",
                        Json::from(counters.observability_computed.load(Ordering::Relaxed)),
                    ),
                ]),
            ),
            (
                "bdd_engine",
                Json::obj([
                    (
                        "runs",
                        Json::from(counters.bdd_engine.runs.load(Ordering::Relaxed)),
                    ),
                    (
                        "peak_live_nodes",
                        Json::from(counters.bdd_engine.peak_live_nodes.load(Ordering::Relaxed)),
                    ),
                    ("unique_load", Json::from(counters.bdd_engine.unique_load())),
                    (
                        "cache_hits",
                        Json::from(counters.bdd_engine.cache_hits.load(Ordering::Relaxed)),
                    ),
                    (
                        "cache_misses",
                        Json::from(counters.bdd_engine.cache_misses.load(Ordering::Relaxed)),
                    ),
                    (
                        "cache_hit_rate",
                        Json::from(counters.bdd_engine.cache_hit_rate()),
                    ),
                    (
                        "gc_runs",
                        Json::from(counters.bdd_engine.gc_runs.load(Ordering::Relaxed)),
                    ),
                    (
                        "reorders",
                        Json::from(counters.bdd_engine.reorders.load(Ordering::Relaxed)),
                    ),
                ]),
            ),
            ("latency_us", stats.latency.to_json()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SMALL: &str = "INPUT(a)\\nINPUT(b)\\nOUTPUT(y)\\nt = NAND(a, b)\\ny = NOT(t)\\n";

    fn service() -> Service {
        Service::new(ServiceConfig {
            timeout_ms: 0,
            ..ServiceConfig::default()
        })
    }

    fn analyze_frame(extra: &str) -> String {
        format!(r#"{{"kind":"analyze","netlist":"{SMALL}"{extra}}}"#)
    }

    #[test]
    fn analyze_round_trip_and_cache_tagging() {
        let svc = service();
        let first = svc.handle_line(&analyze_frame(r#","eps":0.1,"id":1"#));
        assert!(first.contains("\"ok\":true"), "{first}");
        assert!(first.contains("\"cache\":\"miss\""), "{first}");
        assert!(first.contains("\"id\":1"), "{first}");
        let second = svc.handle_line(&analyze_frame(r#","eps":0.1,"id":2"#));
        assert!(second.contains("\"cache\":\"hit\""), "{second}");
        // Identical payloads modulo id/cache tag.
        let strip = |s: &str| {
            s.replace("\"cache\":\"hit\"", "")
                .replace("\"cache\":\"miss\"", "")
                .replace("\"id\":1,", "")
                .replace("\"id\":2,", "")
        };
        assert_eq!(strip(&first), strip(&second));
    }

    #[test]
    fn stats_request_reports_counters() {
        let svc = service();
        let _ = svc.handle_line(&analyze_frame(""));
        let _ = svc.handle_line(&analyze_frame(""));
        let _ = svc.handle_line("garbage");
        let stats = svc.handle_line(r#"{"kind":"stats"}"#);
        let doc = crate::json::parse(stats.trim()).unwrap();
        let result = doc.get("result").unwrap();
        let requests = result.get("requests").unwrap();
        assert_eq!(requests.get("analyze").and_then(Json::as_u64), Some(2));
        assert_eq!(result.get("errors").and_then(Json::as_u64), Some(1));
        let cache = result.get("cache").unwrap();
        assert_eq!(cache.get("hits").and_then(Json::as_u64), Some(1));
        assert_eq!(
            cache.get("weights_computed").and_then(Json::as_u64),
            Some(1)
        );
        assert!(result.get("latency_us").unwrap().get("count").is_some());
    }

    #[test]
    fn malformed_lines_never_panic_and_return_typed_errors() {
        let svc = service();
        for line in ["", "{", "[]", "\"x\"", "{\"kind\":\"zap\"}", "{\"kind\":1}"] {
            let out = svc.handle_line(line);
            assert!(out.contains("\"ok\":false"), "{line} -> {out}");
            assert!(out.contains("\"code\":\"bad_request\""), "{line} -> {out}");
        }
    }

    #[test]
    fn timeouts_produce_typed_errors() {
        let svc = Service::new(ServiceConfig {
            timeout_ms: 1,
            ..ServiceConfig::default()
        });
        // A large MC budget cannot finish in 1 ms.
        let out = svc.handle_line(&format!(
            r#"{{"kind":"monte_carlo","netlist":"{SMALL}","patterns":400000000,"threads":1}}"#
        ));
        assert!(out.contains("\"code\":\"timeout\""), "{out}");
        assert_eq!(svc.stats().timeouts.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn monte_carlo_is_deterministic_through_the_service() {
        let svc = service();
        let frame = format!(
            r#"{{"kind":"monte_carlo","netlist":"{SMALL}","patterns":4096,"seed":3,"threads":2}}"#
        );
        let a = svc.handle_line(&frame);
        let b = svc.handle_line(&frame);
        // First run is a cache miss, second a hit; estimates identical.
        assert_eq!(
            a.replace("\"cache\":\"miss\"", ""),
            b.replace("\"cache\":\"hit\"", "")
        );
    }
}
