//! Minimal SIGTERM/SIGINT handling without any external crate.
//!
//! The daemon needs exactly one bit from the OS: "please drain". A full
//! signal-handling crate is out of bounds (offline build, std-only), and
//! `signal(2)` with a flag-setting handler is async-signal-safe — the
//! handler only stores to a static `AtomicBool`.

use std::sync::atomic::{AtomicBool, Ordering};

/// Set by the signal handler; polled by the serve loop.
static SHUTDOWN: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
mod imp {
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    // `signal` is in every libc the workspace targets; declaring it
    // directly avoids depending on the `libc` crate.
    unsafe extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    extern "C" fn on_signal(_signum: i32) {
        super::SHUTDOWN.store(true, std::sync::atomic::Ordering::SeqCst);
    }

    pub fn install() {
        // SAFETY: `on_signal` only performs an atomic store, which is
        // async-signal-safe; `signal` itself is safe to call with a valid
        // function pointer.
        unsafe {
            signal(SIGTERM, on_signal);
            signal(SIGINT, on_signal);
        }
    }
}

#[cfg(not(unix))]
mod imp {
    pub fn install() {}
}

/// Installs SIGTERM/SIGINT handlers (no-op off Unix) and returns the
/// shutdown flag they set. Safe to call more than once.
pub fn install_shutdown_flag() -> &'static AtomicBool {
    imp::install();
    &SHUTDOWN
}

/// True once a shutdown signal has been received (or
/// [`request_shutdown`] was called).
#[must_use]
pub fn shutdown_requested() -> bool {
    SHUTDOWN.load(Ordering::SeqCst)
}

/// Sets the shutdown flag programmatically (tests, embedding).
pub fn request_shutdown() {
    SHUTDOWN.store(true, Ordering::SeqCst);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn programmatic_shutdown_sets_the_flag() {
        let flag = install_shutdown_flag();
        assert!(!flag.load(Ordering::SeqCst) || shutdown_requested());
        request_shutdown();
        assert!(shutdown_requested());
    }
}
