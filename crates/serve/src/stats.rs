//! Service counters and a lock-free latency histogram.

use crate::json::Json;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Number of power-of-two latency buckets; bucket `i` covers
/// `[2^i, 2^(i+1))` microseconds, bucket 0 covers `[0, 2)` µs. 40 buckets
/// reach ~12.7 days, far beyond any request timeout.
const BUCKETS: usize = 40;

/// A fixed-bucket log₂ histogram of service times in microseconds.
///
/// Recording is a single relaxed atomic increment; percentile reads
/// (`stats` requests) scan the 40 buckets. Percentiles are reported as the
/// upper bound of the bucket containing the target rank, so they are exact
/// to within a factor of two — the right fidelity for a counters endpoint
/// (alerting, regressions), not for microbenchmarking.
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    max_us: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            max_us: AtomicU64::new(0),
        }
    }
}

impl LatencyHistogram {
    /// Records one service time.
    pub fn record(&self, elapsed: Duration) {
        let us = u64::try_from(elapsed.as_micros()).unwrap_or(u64::MAX);
        let idx = (64 - us.leading_zeros() as usize)
            .saturating_sub(1)
            .min(BUCKETS - 1);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.max_us.fetch_max(us, Ordering::Relaxed);
    }

    /// Total samples recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// The `q`-quantile (`0 < q ≤ 1`) in microseconds: the upper bound of
    /// the bucket containing the target rank, or 0 with no samples.
    #[must_use]
    pub fn quantile_us(&self, q: f64) -> u64 {
        let snapshot: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let total: u64 = snapshot.iter().sum();
        if total == 0 {
            return 0;
        }
        #[allow(
            clippy::cast_precision_loss,
            clippy::cast_possible_truncation,
            clippy::cast_sign_loss
        )]
        let target = ((total as f64) * q.clamp(0.0, 1.0)).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &n) in snapshot.iter().enumerate() {
            seen += n;
            if seen >= target {
                // Upper bound of bucket i, capped by the observed maximum.
                let bound = if i + 1 >= 64 {
                    u64::MAX
                } else {
                    (1u64 << (i + 1)) - 1
                };
                return bound.min(self.max_us.load(Ordering::Relaxed));
            }
        }
        self.max_us.load(Ordering::Relaxed)
    }

    /// The largest recorded service time in microseconds.
    #[must_use]
    pub fn max_us(&self) -> u64 {
        self.max_us.load(Ordering::Relaxed)
    }

    /// The histogram as a JSON object (`count`, `p50`, `p99`, `max`, µs).
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("count", Json::from(self.count())),
            ("p50", Json::from(self.quantile_us(0.50))),
            ("p99", Json::from(self.quantile_us(0.99))),
            ("max", Json::from(self.max_us())),
        ])
    }
}

/// Request/connection counters exposed by the `stats` request kind.
#[derive(Debug, Default)]
pub struct ServiceStats {
    /// `analyze` requests received.
    pub analyze: AtomicU64,
    /// `observability` requests received.
    pub observability: AtomicU64,
    /// `monte_carlo` requests received.
    pub monte_carlo: AtomicU64,
    /// `estimate` requests received.
    pub estimate: AtomicU64,
    /// `harden` requests received.
    pub harden: AtomicU64,
    /// `critical_eps` requests received.
    pub critical_eps: AtomicU64,
    /// `stats` requests received.
    pub stats: AtomicU64,
    /// `health` requests received.
    pub health: AtomicU64,
    /// Frames answered with a typed error.
    pub errors: AtomicU64,
    /// Requests that hit the per-request timeout.
    pub timeouts: AtomicU64,
    /// Compute paths that observed a fired cancel token and unwound with
    /// a typed `Cancelled` error — no partial results, no zombie work.
    /// Covers deadline fires, disconnect cancels, and drain cancels.
    pub cancelled: AtomicU64,
    /// Requests answered with the `deadline_exceeded` wire code (the
    /// client-facing subset of `cancelled`).
    pub deadline_exceeded: AtomicU64,
    /// In-flight jobs cancelled because their client disconnected before
    /// the reply was ready.
    pub disconnect_cancels: AtomicU64,
    /// Requests shed under load: admission-control rejections plus
    /// connections turned away with an `overloaded` farewell because the
    /// worker-pool queue stayed full.
    pub shed: AtomicU64,
    /// Requests or connections that died to a contained panic.
    pub panics: AtomicU64,
    /// Analysis requests currently executing (admission gauge).
    pub inflight: AtomicU64,
    /// Connections accepted (TCP + Unix).
    pub connections_accepted: AtomicU64,
    /// Connections currently open.
    pub connections_active: AtomicU64,
    /// Service-time histogram over every answered frame.
    pub latency: LatencyHistogram,
    /// `estimate` requests answered by the exact BDD tier.
    pub tier_exact: AtomicU64,
    /// `estimate` requests answered by the propagation tier.
    pub tier_propagation: AtomicU64,
    /// `estimate` requests refined by the Monte Carlo tier.
    pub tier_mc: AtomicU64,
    /// Exact-tier abandonments (budget trips and backend failures). A
    /// nonzero count here is the "never degrade silently" signal: every
    /// fallback is visible in `stats` and `health`.
    pub estimator_fallbacks: AtomicU64,
}

impl ServiceStats {
    /// Bumps the per-kind request counter.
    pub fn count_kind(&self, kind: &str) {
        match kind {
            "analyze" => &self.analyze,
            "observability" => &self.observability,
            "monte_carlo" => &self.monte_carlo,
            "estimate" => &self.estimate,
            "harden" => &self.harden,
            "critical_eps" => &self.critical_eps,
            "health" => &self.health,
            _ => &self.stats,
        }
        .fetch_add(1, Ordering::Relaxed);
    }

    /// Folds one estimate's tier outcome into the service-wide counters.
    pub fn record_tiers(&self, diagnostics: &relogic::Diagnostics) {
        self.tier_exact
            .fetch_add(diagnostics.tier_exact(), Ordering::Relaxed);
        self.tier_propagation
            .fetch_add(diagnostics.tier_propagation(), Ordering::Relaxed);
        self.tier_mc
            .fetch_add(diagnostics.tier_mc(), Ordering::Relaxed);
        self.estimator_fallbacks
            .fetch_add(diagnostics.estimator_fallbacks(), Ordering::Relaxed);
    }

    /// The `estimator` sub-object: which tier answered `estimate`
    /// requests, and how often the exact tier was abandoned.
    #[must_use]
    pub fn estimator_json(&self) -> Json {
        Json::obj([
            (
                "tier_exact",
                Json::from(self.tier_exact.load(Ordering::Relaxed)),
            ),
            (
                "tier_propagation",
                Json::from(self.tier_propagation.load(Ordering::Relaxed)),
            ),
            ("tier_mc", Json::from(self.tier_mc.load(Ordering::Relaxed))),
            (
                "fallbacks",
                Json::from(self.estimator_fallbacks.load(Ordering::Relaxed)),
            ),
        ])
    }

    /// The `cancellation` sub-object: cooperative-cancellation outcomes.
    /// `cancelled` counts every compute path that unwound on a fired
    /// token; `deadline_exceeded` and `disconnect_cancels` attribute the
    /// fires to their cause.
    #[must_use]
    pub fn cancellation_json(&self) -> Json {
        Json::obj([
            (
                "cancelled",
                Json::from(self.cancelled.load(Ordering::Relaxed)),
            ),
            (
                "deadline_exceeded",
                Json::from(self.deadline_exceeded.load(Ordering::Relaxed)),
            ),
            (
                "disconnect_cancels",
                Json::from(self.disconnect_cancels.load(Ordering::Relaxed)),
            ),
        ])
    }

    /// The `requests` sub-object.
    #[must_use]
    pub fn requests_json(&self) -> Json {
        Json::obj([
            ("analyze", Json::from(self.analyze.load(Ordering::Relaxed))),
            (
                "observability",
                Json::from(self.observability.load(Ordering::Relaxed)),
            ),
            (
                "monte_carlo",
                Json::from(self.monte_carlo.load(Ordering::Relaxed)),
            ),
            (
                "estimate",
                Json::from(self.estimate.load(Ordering::Relaxed)),
            ),
            ("harden", Json::from(self.harden.load(Ordering::Relaxed))),
            (
                "critical_eps",
                Json::from(self.critical_eps.load(Ordering::Relaxed)),
            ),
            ("stats", Json::from(self.stats.load(Ordering::Relaxed))),
            ("health", Json::from(self.health.load(Ordering::Relaxed))),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_bracket_recorded_samples() {
        let h = LatencyHistogram::default();
        assert_eq!(h.quantile_us(0.5), 0);
        for us in [3u64, 5, 9, 17, 33, 1000] {
            h.record(Duration::from_micros(us));
        }
        assert_eq!(h.count(), 6);
        let p50 = h.quantile_us(0.50);
        assert!((4..=31).contains(&p50), "p50 = {p50}");
        let p99 = h.quantile_us(0.99);
        assert!(p99 >= 512, "p99 = {p99}");
        assert_eq!(h.max_us(), 1000);
        assert!(p99 <= h.max_us());
    }

    #[test]
    fn kind_counters_accumulate() {
        let s = ServiceStats::default();
        s.count_kind("analyze");
        s.count_kind("analyze");
        s.count_kind("monte_carlo");
        s.count_kind("estimate");
        s.count_kind("harden");
        s.count_kind("critical_eps");
        s.count_kind("stats");
        s.count_kind("health");
        let j = s.requests_json();
        assert_eq!(j.get("analyze").and_then(Json::as_u64), Some(2));
        assert_eq!(j.get("monte_carlo").and_then(Json::as_u64), Some(1));
        assert_eq!(j.get("estimate").and_then(Json::as_u64), Some(1));
        assert_eq!(j.get("harden").and_then(Json::as_u64), Some(1));
        assert_eq!(j.get("critical_eps").and_then(Json::as_u64), Some(1));
        assert_eq!(j.get("health").and_then(Json::as_u64), Some(1));
    }

    #[test]
    fn cancellation_counters_serialize() {
        let s = ServiceStats::default();
        s.cancelled.fetch_add(3, Ordering::Relaxed);
        s.deadline_exceeded.fetch_add(2, Ordering::Relaxed);
        s.disconnect_cancels.fetch_add(1, Ordering::Relaxed);
        let j = s.cancellation_json();
        assert_eq!(j.get("cancelled").and_then(Json::as_u64), Some(3));
        assert_eq!(j.get("deadline_exceeded").and_then(Json::as_u64), Some(2));
        assert_eq!(j.get("disconnect_cancels").and_then(Json::as_u64), Some(1));
    }

    #[test]
    fn tier_counters_fold_diagnostics() {
        let s = ServiceStats::default();
        let mut d = relogic::Diagnostics::new();
        d.record_estimator_fallback();
        d.record_tier_propagation();
        s.record_tiers(&d);
        s.record_tiers(&d);
        let j = s.estimator_json();
        assert_eq!(j.get("tier_exact").and_then(Json::as_u64), Some(0));
        assert_eq!(j.get("tier_propagation").and_then(Json::as_u64), Some(2));
        assert_eq!(j.get("fallbacks").and_then(Json::as_u64), Some(2));
    }
}
