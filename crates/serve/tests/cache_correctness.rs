//! Cache-correctness tests driven through the public service API: repeat
//! requests must be bit-identical and skip recomputation (verified via the
//! `stats` counters), and any netlist mutation must miss.

// Test helpers may unwrap: a panic here is a test failure, not a crash path.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use relogic_serve::json::{self, Json};
use relogic_serve::{Service, ServiceConfig};
use std::sync::atomic::Ordering;

const SMALL: &str = "INPUT(a)\\nINPUT(b)\\nOUTPUT(y)\\nt = NAND(a, b)\\ny = NOT(t)\\n";

fn service() -> Service {
    Service::new(ServiceConfig {
        timeout_ms: 0,
        ..ServiceConfig::default()
    })
}

fn counters_of(service: &Service) -> (u64, u64, u64, u64) {
    let c = service.cache().counters();
    (
        c.hits.load(Ordering::Relaxed),
        c.misses.load(Ordering::Relaxed),
        c.circuits_parsed.load(Ordering::Relaxed),
        c.weights_computed.load(Ordering::Relaxed),
    )
}

#[test]
fn repeat_analyze_is_bit_identical_and_skips_weight_recomputation() {
    let svc = service();
    let frame = format!(r#"{{"kind":"analyze","netlist":"{SMALL}","eps":[0.05,0.1,0.2]}}"#);
    let first = svc.handle_line(&frame);
    let second = svc.handle_line(&frame);
    assert_eq!(
        first.replace("\"cache\":\"miss\"", "X"),
        second.replace("\"cache\":\"hit\"", "X"),
        "second answer must be bit-identical"
    );
    let (hits, misses, parsed, weights) = counters_of(&svc);
    assert_eq!(hits, 1);
    assert_eq!(misses, 1);
    assert_eq!(parsed, 1, "netlist parsed once, not twice");
    assert_eq!(weights, 1, "weight vectors computed once, not twice");
}

#[test]
fn stats_request_exposes_the_hit() {
    let svc = service();
    let frame = format!(r#"{{"kind":"analyze","netlist":"{SMALL}"}}"#);
    let _ = svc.handle_line(&frame);
    let _ = svc.handle_line(&frame);
    let reply = svc.handle_line(r#"{"kind":"stats"}"#);
    let doc = json::parse(reply.trim()).unwrap();
    let cache = doc.get("result").unwrap().get("cache").unwrap();
    assert_eq!(cache.get("hits").and_then(Json::as_u64), Some(1));
    assert_eq!(cache.get("misses").and_then(Json::as_u64), Some(1));
    assert_eq!(
        cache.get("weights_computed").and_then(Json::as_u64),
        Some(1)
    );
    assert_eq!(cache.get("entries").and_then(Json::as_u64), Some(1));
}

#[test]
fn mutated_netlist_misses() {
    let svc = service();
    let frame = format!(r#"{{"kind":"analyze","netlist":"{SMALL}"}}"#);
    let _ = svc.handle_line(&frame);
    // Same circuit, one extra comment byte: different content address.
    let mutated =
        format!(r#"{{"kind":"analyze","netlist":"{SMALL}# x\n"}}"#).replace("\n\"", "\\n\"");
    let reply = svc.handle_line(&mutated);
    assert!(reply.contains("\"cache\":\"miss\""), "{reply}");
    let (hits, misses, parsed, weights) = counters_of(&svc);
    assert_eq!(hits, 0);
    assert_eq!(misses, 2);
    assert_eq!(parsed, 2);
    assert_eq!(weights, 2);
}

#[test]
fn backend_is_part_of_the_cache_key() {
    let svc = service();
    let bdd = format!(r#"{{"kind":"analyze","netlist":"{SMALL}"}}"#);
    let sim = format!(
        r#"{{"kind":"analyze","netlist":"{SMALL}","backend":"sim","backend_patterns":4096,"backend_seed":7}}"#
    );
    let _ = svc.handle_line(&bdd);
    let reply = svc.handle_line(&sim);
    assert!(reply.contains("\"cache\":\"miss\""), "{reply}");
    let (_, misses, ..) = counters_of(&svc);
    assert_eq!(misses, 2, "bdd and sim artifacts are distinct entries");
}

#[test]
fn observability_and_analyze_share_one_artifact() {
    let svc = service();
    let analyze = format!(r#"{{"kind":"analyze","netlist":"{SMALL}"}}"#);
    let observability = format!(r#"{{"kind":"observability","netlist":"{SMALL}"}}"#);
    let _ = svc.handle_line(&analyze);
    let reply = svc.handle_line(&observability);
    // Same compiled circuit: the observability request hits the artifact
    // parsed by analyze and only adds the lazily-computed matrix.
    assert!(reply.contains("\"cache\":\"hit\""), "{reply}");
    let c = svc.cache().counters();
    assert_eq!(c.circuits_parsed.load(Ordering::Relaxed), 1);
    assert_eq!(c.weights_computed.load(Ordering::Relaxed), 1);
    assert_eq!(c.observability_computed.load(Ordering::Relaxed), 1);
}

#[test]
fn single_flight_under_a_thundering_herd() {
    let svc = service();
    let frame = format!(r#"{{"kind":"analyze","netlist":"{SMALL}","eps":0.1}}"#);
    let replies: Vec<String> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..16)
            .map(|_| {
                let svc = svc.clone();
                let frame = frame.clone();
                scope.spawn(move || svc.handle_line(&frame))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    // Every reply carries the same result payload.
    let canon: Vec<String> = replies
        .iter()
        .map(|r| {
            r.replace("\"cache\":\"miss\"", "X")
                .replace("\"cache\":\"hit\"", "X")
        })
        .collect();
    assert!(canon.iter().all(|r| r == &canon[0]));
    // Weights were computed exactly once despite 16 concurrent requests
    // (OnceLock single-flight); the circuit may be parsed a handful of
    // times by racing threads but only one artifact wins.
    let c = svc.cache().counters();
    assert_eq!(c.weights_computed.load(Ordering::Relaxed), 1);
    let (entries, _) = svc.cache().usage();
    assert_eq!(entries, 1);
}

#[test]
fn stats_reports_bdd_engine_statistics_after_observability() {
    let svc = service();
    let stats_frame = r#"{"kind":"stats"}"#;
    let before = json::parse(&svc.handle_line(stats_frame)).unwrap();
    let engine = before.get("result").and_then(|r| r.get("bdd_engine"));
    assert_eq!(
        engine.and_then(|e| e.get("runs")).and_then(Json::as_u64),
        Some(0),
        "no BDD runs before any observability request"
    );
    let obs = format!(r#"{{"kind":"observability","netlist":"{SMALL}"}}"#);
    let reply = svc.handle_line(&obs);
    assert!(reply.contains("\"ok\":true"), "{reply}");
    let after = json::parse(&svc.handle_line(stats_frame)).unwrap();
    let engine = after
        .get("result")
        .and_then(|r| r.get("bdd_engine"))
        .expect("bdd_engine block present");
    assert_eq!(engine.get("runs").and_then(Json::as_u64), Some(1));
    let peak = engine
        .get("peak_live_nodes")
        .and_then(Json::as_u64)
        .unwrap();
    assert!(peak > 0, "a BDD run must report live nodes");
    let misses = engine.get("cache_misses").and_then(Json::as_u64).unwrap();
    assert!(misses > 0, "building BDDs must touch the operation cache");
    // Aggregates are monotonic: a cached replay adds no new run.
    let _ = svc.handle_line(&obs);
    let replay = json::parse(&svc.handle_line(stats_frame)).unwrap();
    let engine = replay
        .get("result")
        .and_then(|r| r.get("bdd_engine"))
        .unwrap();
    assert_eq!(engine.get("runs").and_then(Json::as_u64), Some(1));
}
