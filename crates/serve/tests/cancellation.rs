//! End-to-end deadline and cancellation tests over real sockets: a
//! bound `deadline_ms` request answers `deadline_exceeded` promptly and
//! demonstrably frees its worker, a vanished client cancels its
//! in-flight job, and graceful drain completes under a wedged-slow job
//! by firing the outstanding cancel tokens after the grace period.

// Test helpers may unwrap: a panic here is a test failure, not a crash path.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use relogic_serve::json::{self, Json};
use relogic_serve::{Server, ServerConfig, ServiceConfig};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::atomic::Ordering;
use std::time::{Duration, Instant};

fn c499_text() -> String {
    relogic_netlist::bench::write(&relogic_gen::suite::c499())
}

fn start_server(threads: usize, timeout_ms: u64, drain_grace_ms: u64) -> Server {
    Server::start(ServerConfig {
        tcp: Some("127.0.0.1:0".to_owned()),
        threads,
        drain_grace_ms,
        service: ServiceConfig {
            timeout_ms,
            ..ServiceConfig::default()
        },
        ..ServerConfig::default()
    })
    .unwrap()
}

fn round_trip(addr: std::net::SocketAddr, frame: &str) -> Json {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(120)))
        .unwrap();
    stream.write_all(frame.as_bytes()).unwrap();
    stream.write_all(b"\n").unwrap();
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    json::parse(line.trim()).unwrap_or_else(|e| panic!("bad reply {line:?}: {e}"))
}

/// A Monte Carlo budget large enough to run for minutes on one thread —
/// the "wedged-slow job" stand-in. Only ever run under a deadline or a
/// cancel, so the full budget is never actually simulated.
fn wedge_frame(netlist: &str, id: u64) -> String {
    Json::obj([
        ("kind", Json::from("monte_carlo")),
        ("id", Json::from(id)),
        ("netlist", Json::from(netlist)),
        ("eps", Json::from(0.1)),
        ("patterns", Json::from(4_000_000_000u64)),
        ("seed", Json::from(9u64)),
        ("threads", Json::from(1u64)),
    ])
    .encode()
}

/// Acceptance: a `deadline_ms: 50` observability request against c499
/// with a cold cache answers a typed `deadline_exceeded` promptly, the
/// worker frees, and a follow-up request on the same server succeeds —
/// the cancelled materialization did not poison the cache slot.
#[test]
fn cold_observability_deadline_returns_typed_error_and_slot_recovers() {
    let netlist = c499_text();
    let server = start_server(2, 0, 2_000);
    let addr = server.tcp_addr().unwrap();
    let deadlined = Json::obj([
        ("kind", Json::from("observability")),
        ("id", Json::from(1u64)),
        ("netlist", Json::from(netlist.as_str())),
        ("eps", Json::from(0.05)),
        ("deadline_ms", Json::from(50u64)),
    ])
    .encode();
    let started = Instant::now();
    let reply = round_trip(addr, &deadlined);
    let waited = started.elapsed();
    assert_eq!(reply.get("ok").and_then(Json::as_bool), Some(false));
    let error = reply.get("error").unwrap();
    assert_eq!(
        error.get("code").and_then(Json::as_str),
        Some("deadline_exceeded"),
        "{}",
        reply.encode()
    );
    assert!(
        error.get("after_ms").and_then(Json::as_u64).is_some(),
        "typed payload must say how long the work ran: {}",
        reply.encode()
    );
    assert!(
        waited < Duration::from_secs(10),
        "the deadline reply must be prompt, waited {waited:?}"
    );
    // The same request without a deadline now succeeds: the cancelled
    // build released the single-flight slot instead of freezing into it.
    let plain = Json::obj([
        ("kind", Json::from("observability")),
        ("id", Json::from(2u64)),
        ("netlist", Json::from(netlist.as_str())),
        ("eps", Json::from(0.05)),
    ])
    .encode();
    let reply = round_trip(addr, &plain);
    assert_eq!(
        reply.get("ok").and_then(Json::as_bool),
        Some(true),
        "{}",
        reply.encode()
    );
    let stats = server.service().stats();
    assert!(
        stats.deadline_exceeded.load(Ordering::Relaxed) >= 1,
        "the deadline fire must be counted"
    );
    assert_eq!(stats.inflight.load(Ordering::Relaxed), 0, "no zombie work");
    server.shutdown();
}

/// A client that vanishes mid-`monte_carlo` frees its worker within the
/// disconnect check interval: with a single connection worker, a second
/// client's request completes only because the first job was cancelled,
/// and the disconnect is accounted exactly once.
#[test]
fn client_disconnect_mid_monte_carlo_frees_the_worker() {
    let netlist = c499_text();
    let server = start_server(1, 0, 2_000);
    let addr = server.tcp_addr().unwrap();
    {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .write_all(wedge_frame(&netlist, 1).as_bytes())
            .unwrap();
        stream.write_all(b"\n").unwrap();
        stream.flush().unwrap();
        // Give the frame time to reach the worker, then vanish.
        std::thread::sleep(Duration::from_millis(300));
    }
    // The sole worker is busy with the abandoned job; this request can
    // only complete if the disconnect probe cancels it.
    let quick = Json::obj([
        ("kind", Json::from("monte_carlo")),
        ("id", Json::from(2u64)),
        ("netlist", Json::from(netlist.as_str())),
        ("eps", Json::from(0.1)),
        ("patterns", Json::from(2_048u64)),
        ("seed", Json::from(9u64)),
        ("threads", Json::from(1u64)),
    ])
    .encode();
    let started = Instant::now();
    let reply = round_trip(addr, &quick);
    assert_eq!(
        reply.get("ok").and_then(Json::as_bool),
        Some(true),
        "{}",
        reply.encode()
    );
    assert!(
        started.elapsed() < Duration::from_secs(60),
        "worker was not freed promptly"
    );
    let stats = server.service().stats();
    assert_eq!(
        stats.disconnect_cancels.load(Ordering::Relaxed),
        1,
        "exactly one disconnect cancellation"
    );
    // The cancelled compute unwinds at its next chunk boundary and ticks
    // the cancelled counter exactly once.
    let deadline = Instant::now() + Duration::from_secs(30);
    while stats.cancelled.load(Ordering::Relaxed) == 0 {
        assert!(
            Instant::now() < deadline,
            "abandoned job never observed its cancel"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    assert_eq!(stats.cancelled.load(Ordering::Relaxed), 1);
    server.shutdown();
}

/// Graceful drain under a wedged-slow job: shutdown waits out the grace
/// period, fires the outstanding tokens, and completes promptly — the
/// abandoned client is answered with `shutting_down`.
#[test]
fn drain_completes_under_a_wedged_slow_job() {
    let netlist = c499_text();
    let server = start_server(2, 0, 100);
    let addr = server.tcp_addr().unwrap();
    let wedged = {
        let frame = wedge_frame(&netlist, 1);
        std::thread::spawn(move || round_trip(addr, &frame))
    };
    // Wait until the job is actually executing.
    let deadline = Instant::now() + Duration::from_secs(30);
    while server.service().stats().inflight.load(Ordering::Relaxed) == 0 {
        assert!(Instant::now() < deadline, "wedge request never started");
        std::thread::sleep(Duration::from_millis(10));
    }
    let started = Instant::now();
    server.shutdown();
    assert!(
        started.elapsed() < Duration::from_secs(30),
        "drain must not wait for a minutes-long job, took {:?}",
        started.elapsed()
    );
    let reply = wedged.join().unwrap();
    assert_eq!(
        reply
            .get("error")
            .and_then(|e| e.get("code"))
            .and_then(Json::as_str),
        Some("shutting_down"),
        "a drain-cancelled job is retryable elsewhere: {}",
        reply.encode()
    );
}
