//! Chaos suite: drives the daemon over real sockets while the
//! deterministic fault-injection engine perturbs the worker pool,
//! connection I/O, and the artifact cache. Requires `--features chaos`.
//!
//! Invariants asserted at every seed, independent of thread scheduling:
//!
//! - **no hang** — every test runs under an explicit deadline;
//! - **no wrong answer** — every successful Monte Carlo reply is
//!   bit-identical to the fault-free baseline;
//! - **typed failures only** — clients see wire errors from a known set
//!   or clean transport failures, never corrupted complete frames;
//! - **bounded memory** — the artifact cache never exceeds its byte
//!   budget, eviction churn or not;
//! - **clean drain** — SIGTERM-style shutdown completes promptly while
//!   chaos is firing.

// Test helpers may unwrap: a panic here is a test failure, not a crash path.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use relogic_serve::chaos::{Chaos, ChaosConfig, ChaosSite, SitePolicy};
use relogic_serve::json::{self, Json};
use relogic_serve::{Server, ServerConfig, ServiceConfig};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::atomic::Ordering;
use std::time::{Duration, Instant};

/// The three fixed seeds the CI chaos-smoke job pins.
const SEEDS: [u64; 3] = [1, 7, 1234];

/// Wire error codes a chaos-stressed request may legitimately produce.
const RETRYABLE: &[&str] = &["overloaded", "shutting_down", "internal", "timeout"];

/// A small circuit keeps torn-read amplification cheap (reads shrink to
/// one byte under `TornRead`, so frame size bounds the draw count).
fn small_bench() -> String {
    let c = relogic_gen::suite::b9();
    relogic_netlist::bench::write(&c)
}

fn mc_frame(netlist: &str, id: u64) -> String {
    Json::obj([
        ("kind", Json::from("monte_carlo")),
        ("id", Json::from(id)),
        ("netlist", Json::from(netlist)),
        ("eps", Json::from(0.1)),
        ("patterns", Json::from(4096u64)),
        ("seed", Json::from(9u64)),
        ("threads", Json::from(2u64)),
    ])
    .encode()
}

fn start_chaos_server(chaos: std::sync::Arc<Chaos>) -> Server {
    Server::start(ServerConfig {
        tcp: Some("127.0.0.1:0".to_owned()),
        threads: 4,
        service: ServiceConfig {
            timeout_ms: 30_000,
            chaos: Some(chaos),
            ..ServiceConfig::default()
        },
        ..ServerConfig::default()
    })
    .unwrap()
}

/// The fault-free Monte Carlo answer for [`mc_frame`] — the ground truth
/// every chaos-stressed success must reproduce bit for bit.
fn baseline_delta(netlist: &str) -> String {
    let server = Server::start(ServerConfig {
        tcp: Some("127.0.0.1:0".to_owned()),
        threads: 2,
        service: ServiceConfig {
            timeout_ms: 30_000,
            ..ServiceConfig::default()
        },
        ..ServerConfig::default()
    })
    .unwrap();
    let reply = call_until_ok(&server, &mc_frame(netlist, 0), 3);
    server.shutdown();
    delta_of(&reply)
}

fn delta_of(reply: &Json) -> String {
    reply
        .get("result")
        .and_then(|r| r.get("delta"))
        .map(Json::encode)
        .unwrap_or_else(|| panic!("no delta in {}", reply.encode()))
}

/// One request on a fresh connection. `Ok` carries the parsed reply;
/// `Err` describes a transport-level failure (torn frame, reset, EOF) —
/// legitimate under chaos, but never a corrupt *complete* frame.
fn call_once(server: &Server, frame: &str) -> Result<Json, String> {
    let mut stream =
        TcpStream::connect(server.tcp_addr().unwrap()).map_err(|e| format!("connect: {e}"))?;
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .unwrap();
    stream
        .write_all(frame.as_bytes())
        .and_then(|()| stream.write_all(b"\n"))
        .map_err(|e| format!("write: {e}"))?;
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    match reader.read_line(&mut line) {
        Ok(0) => Err("closed before reply".into()),
        Ok(_) if !line.ends_with('\n') => Err(format!("torn frame: {line:?}")),
        Ok(_) => Ok(json::parse(line.trim())
            .unwrap_or_else(|e| panic!("complete frame must parse, got {line:?}: {e}"))),
        Err(e) => Err(format!("read: {e}")),
    }
}

/// Retries [`call_once`] until an `ok` reply, asserting every failure on
/// the way is a transport error or a whitelisted typed error.
fn call_until_ok(server: &Server, frame: &str, max_attempts: usize) -> Json {
    let mut failures = Vec::new();
    for _ in 0..max_attempts {
        match call_once(server, frame) {
            Ok(reply) => {
                if reply.get("ok").and_then(Json::as_bool) == Some(true) {
                    return reply;
                }
                let code = reply
                    .get("error")
                    .and_then(|e| e.get("code"))
                    .and_then(Json::as_str)
                    .unwrap_or("?")
                    .to_owned();
                assert!(
                    RETRYABLE.contains(&code.as_str()),
                    "unexpected error code `{code}` in {}",
                    reply.encode()
                );
                failures.push(code);
            }
            Err(transport) => failures.push(transport),
        }
    }
    panic!("no success in {max_attempts} attempts; failures: {failures:?}")
}

#[test]
fn worker_chaos_injected_panics_never_corrupt_monte_carlo() {
    let netlist = small_bench();
    let truth = baseline_delta(&netlist);
    for seed in SEEDS {
        let deadline = Instant::now() + Duration::from_secs(120);
        let chaos = Chaos::new(ChaosConfig::worker_profile(seed));
        let server = start_chaos_server(chaos);
        for i in 0..12u64 {
            let reply = call_until_ok(&server, &mc_frame(&netlist, i), 12);
            assert_eq!(delta_of(&reply), truth, "seed {seed}, request {i}");
            assert!(Instant::now() < deadline, "seed {seed} hung");
        }
        // Panic-site budgets are finite, so the service must end healthy.
        let reply = call_until_ok(&server, r#"{"kind":"stats"}"#, 6);
        assert_eq!(reply.get("kind").and_then(Json::as_str), Some("stats"));
        server.shutdown();
    }
}

#[test]
fn io_chaos_torn_frames_and_write_eof_yield_no_corrupt_replies() {
    let netlist = small_bench();
    let truth = baseline_delta(&netlist);
    for seed in SEEDS {
        let deadline = Instant::now() + Duration::from_secs(120);
        let chaos = Chaos::new(ChaosConfig::io_profile(seed));
        let server = start_chaos_server(chaos);
        let mut successes = 0;
        for i in 0..8u64 {
            // `call_once`/`call_until_ok` already assert that any
            // complete reply parses and any error is typed; torn frames
            // surface as transport failures and are retried.
            let reply = call_until_ok(&server, &mc_frame(&netlist, i), 20);
            assert_eq!(delta_of(&reply), truth, "seed {seed}, request {i}");
            successes += 1;
            assert!(Instant::now() < deadline, "seed {seed} hung");
        }
        assert_eq!(successes, 8);
        server.shutdown();
    }
}

#[test]
fn cache_chaos_eviction_churn_stays_within_budget_and_exact() {
    let netlist = small_bench();
    let truth = baseline_delta(&netlist);
    for seed in SEEDS {
        let deadline = Instant::now() + Duration::from_secs(120);
        let chaos = Chaos::new(ChaosConfig::cache_profile(seed));
        let server = start_chaos_server(chaos);
        for i in 0..10u64 {
            let reply = call_until_ok(&server, &mc_frame(&netlist, i), 12);
            assert_eq!(delta_of(&reply), truth, "seed {seed}, request {i}");
            let cache = server.service().cache();
            let (_, bytes) = cache.usage();
            assert!(
                bytes <= cache.budget_bytes(),
                "cache over budget under churn: {bytes} > {}",
                cache.budget_bytes()
            );
            assert!(Instant::now() < deadline, "seed {seed} hung");
        }
        // The materialization-failure budget (8) is finite: the cache
        // must still be serving, not permanently poisoned.
        let reply = call_until_ok(&server, &mc_frame(&netlist, 99), 12);
        assert_eq!(delta_of(&reply), truth);
        server.shutdown();
    }
}

#[test]
fn drain_mid_chaos_completes_promptly() {
    let netlist = small_bench();
    for seed in SEEDS {
        let chaos = Chaos::new(ChaosConfig::all_profile(seed));
        let server = start_chaos_server(chaos);
        let addr = server.tcp_addr().unwrap();
        let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
        let clients: Vec<_> = (0..4u64)
            .map(|k| {
                let netlist = netlist.clone();
                let stop = std::sync::Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut i = 0u64;
                    while !stop.load(Ordering::SeqCst) {
                        // Outcomes are irrelevant here — only that the
                        // hammering never wedges the drain below.
                        let Ok(mut stream) = TcpStream::connect(addr) else {
                            return;
                        };
                        let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
                        let frame = mc_frame(&netlist, k * 1000 + i);
                        if stream
                            .write_all(frame.as_bytes())
                            .and_then(|()| stream.write_all(b"\n"))
                            .is_err()
                        {
                            return;
                        }
                        let mut reader = BufReader::new(stream);
                        let mut line = String::new();
                        let _ = reader.read_line(&mut line);
                        i += 1;
                    }
                })
            })
            .collect();
        std::thread::sleep(Duration::from_millis(300));
        // SIGTERM analogue: drain while requests are mid-flight and
        // chaos is still firing. Must finish well within the deadline.
        let shutdown = std::thread::spawn(move || server.shutdown());
        let deadline = Instant::now() + Duration::from_secs(60);
        while !shutdown.is_finished() {
            assert!(Instant::now() < deadline, "seed {seed}: drain hung");
            std::thread::sleep(Duration::from_millis(50));
        }
        shutdown.join().unwrap();
        stop.store(true, Ordering::SeqCst);
        for c in clients {
            c.join().expect("client thread panicked");
        }
    }
}

/// Satellite: one injected panic mid-`monte_carlo` under concurrent
/// clients maps to exactly one `internal` wire error; every other client
/// gets the right answer and the pool keeps serving.
#[test]
fn a_panic_mid_monte_carlo_is_contained_to_one_request() {
    let netlist = small_bench();
    let truth = baseline_delta(&netlist);
    for seed in SEEDS {
        let chaos = Chaos::new(
            ChaosConfig::quiet(seed).site(ChaosSite::ExecPanic, SitePolicy::limited(1.0, 1)),
        );
        let server = start_chaos_server(std::sync::Arc::clone(&chaos));
        let addr = server.tcp_addr().unwrap();
        let handles: Vec<_> = (0..8u64)
            .map(|i| {
                let frame = mc_frame(&netlist, i);
                std::thread::spawn(move || {
                    let mut stream = TcpStream::connect(addr).unwrap();
                    stream
                        .set_read_timeout(Some(Duration::from_secs(60)))
                        .unwrap();
                    stream.write_all(frame.as_bytes()).unwrap();
                    stream.write_all(b"\n").unwrap();
                    let mut reader = BufReader::new(stream);
                    let mut line = String::new();
                    reader.read_line(&mut line).unwrap();
                    json::parse(line.trim()).unwrap()
                })
            })
            .collect();
        let replies: Vec<Json> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        let mut internals = 0;
        for reply in &replies {
            if reply.get("ok").and_then(Json::as_bool) == Some(true) {
                assert_eq!(delta_of(reply), truth, "seed {seed}");
            } else {
                let code = reply
                    .get("error")
                    .and_then(|e| e.get("code"))
                    .and_then(Json::as_str);
                assert_eq!(code, Some("internal"), "seed {seed}: {}", reply.encode());
                internals += 1;
            }
        }
        assert_eq!(internals, 1, "seed {seed}: exactly one request dies");
        assert_eq!(chaos.fired(ChaosSite::ExecPanic), 1);
        assert_eq!(
            server.service().stats().panics.load(Ordering::Relaxed),
            1,
            "seed {seed}"
        );
        // The pool survived: a fresh request still succeeds.
        let reply = call_until_ok(&server, &mc_frame(&netlist, 777), 3);
        assert_eq!(delta_of(&reply), truth, "seed {seed}");
        server.shutdown();
    }
}

/// Satellite: an injected worker latency spike plus a tight client
/// deadline is deterministic per seed — running the same scenario twice
/// with the same seed yields the same outcome codes, the delayed request
/// answers `deadline_exceeded`, and once the injection budget is spent a
/// generously-deadlined request completes bit-identical to the fault-free
/// baseline.
#[test]
fn worker_latency_plus_tight_deadline_is_deterministic_per_seed() {
    let netlist = small_bench();
    let truth = baseline_delta(&netlist);
    let tight = Json::obj([
        ("kind", Json::from("monte_carlo")),
        ("id", Json::from(1u64)),
        ("netlist", Json::from(netlist.as_str())),
        ("eps", Json::from(0.1)),
        ("patterns", Json::from(4096u64)),
        ("seed", Json::from(9u64)),
        ("threads", Json::from(2u64)),
        ("deadline_ms", Json::from(100u64)),
    ])
    .encode();
    let generous = Json::obj([
        ("kind", Json::from("monte_carlo")),
        ("id", Json::from(2u64)),
        ("netlist", Json::from(netlist.as_str())),
        ("eps", Json::from(0.1)),
        ("patterns", Json::from(4096u64)),
        ("seed", Json::from(9u64)),
        ("threads", Json::from(2u64)),
        ("deadline_ms", Json::from(30_000u64)),
    ])
    .encode();
    let run_scenario = |seed: u64| -> Vec<String> {
        // One guaranteed latency spike an order of magnitude past the
        // tight deadline, then the injection budget is spent.
        let mut config =
            ChaosConfig::quiet(seed).site(ChaosSite::ExecDelay, SitePolicy::limited(1.0, 1));
        config.delay = Duration::from_millis(1000);
        let chaos = Chaos::new(config);
        let server = start_chaos_server(std::sync::Arc::clone(&chaos));
        let first = call_once(&server, &tight).unwrap();
        let second = call_once(&server, &generous).unwrap();
        assert_eq!(chaos.fired(ChaosSite::ExecDelay), 1, "seed {seed}");
        let code_of = |reply: &Json| {
            reply
                .get("error")
                .and_then(|e| e.get("code"))
                .and_then(Json::as_str)
                .unwrap_or("ok")
                .to_owned()
        };
        assert_eq!(code_of(&first), "deadline_exceeded", "{}", first.encode());
        assert_eq!(code_of(&second), "ok", "{}", second.encode());
        assert_eq!(
            delta_of(&second),
            truth,
            "completed-under-deadline must match baseline"
        );
        server.shutdown();
        vec![code_of(&first), code_of(&second)]
    };
    for seed in SEEDS {
        assert_eq!(
            run_scenario(seed),
            run_scenario(seed),
            "seed {seed}: same seed must reproduce the same outcomes"
        );
    }
}
