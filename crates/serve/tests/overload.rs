//! Overload-protection tests (no chaos feature required): admission
//! control sheds excess analysis requests with typed `overloaded`
//! errors, the shed counter accounts every rejection, the `health` kind
//! answers over the wire, and the retrying client grinds through an
//! overloaded server to completion.

// Test helpers may unwrap: a panic here is a test failure, not a crash path.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use relogic_serve::client::{Client, ClientConfig, Endpoint};
use relogic_serve::json::{self, Json};
use relogic_serve::{Server, ServerConfig, ServiceConfig};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::atomic::Ordering;
use std::time::Duration;

fn bench_text() -> String {
    let c = relogic_gen::suite::b9();
    relogic_netlist::bench::write(&c)
}

/// A Monte Carlo request slow enough (~hundreds of ms) that concurrent
/// copies genuinely overlap inside the admission window.
fn slow_mc_frame(netlist: &str, id: u64) -> String {
    Json::obj([
        ("kind", Json::from("monte_carlo")),
        ("id", Json::from(id)),
        ("netlist", Json::from(netlist)),
        ("eps", Json::from(0.1)),
        ("patterns", Json::from(200_000u64)),
        ("seed", Json::from(9u64)),
        ("threads", Json::from(1u64)),
    ])
    .encode()
}

fn start_server(max_inflight: usize, threads: usize) -> Server {
    Server::start(ServerConfig {
        tcp: Some("127.0.0.1:0".to_owned()),
        threads,
        service: ServiceConfig {
            timeout_ms: 60_000,
            max_inflight,
            ..ServiceConfig::default()
        },
        ..ServerConfig::default()
    })
    .unwrap()
}

fn round_trip(addr: std::net::SocketAddr, frame: &str) -> Json {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(120)))
        .unwrap();
    stream.write_all(frame.as_bytes()).unwrap();
    stream.write_all(b"\n").unwrap();
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    json::parse(line.trim()).unwrap_or_else(|e| panic!("bad reply {line:?}: {e}"))
}

/// Acceptance: with `--max-inflight N`, a burst of 4·N concurrent
/// requests produces only `ok` and `overloaded` outcomes, and the shed
/// counter matches the number of `overloaded` replies exactly.
#[test]
fn a_burst_beyond_max_inflight_yields_only_ok_or_overloaded() {
    const N: usize = 2;
    let netlist = bench_text();
    let server = start_server(N, 16);
    let addr = server.tcp_addr().unwrap();
    let handles: Vec<_> = (0..4 * N as u64)
        .map(|i| {
            let frame = slow_mc_frame(&netlist, i);
            std::thread::spawn(move || round_trip(addr, &frame))
        })
        .collect();
    let replies: Vec<Json> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    let mut ok = 0u64;
    let mut overloaded = 0u64;
    let mut deltas = Vec::new();
    for reply in &replies {
        if reply.get("ok").and_then(Json::as_bool) == Some(true) {
            ok += 1;
            deltas.push(
                reply
                    .get("result")
                    .and_then(|r| r.get("delta"))
                    .map(Json::encode)
                    .unwrap(),
            );
        } else {
            let error = reply.get("error").unwrap();
            assert_eq!(
                error.get("code").and_then(Json::as_str),
                Some("overloaded"),
                "only ok/overloaded allowed: {}",
                reply.encode()
            );
            assert!(
                error.get("retry_after_ms").and_then(Json::as_u64).is_some(),
                "overloaded must carry retry_after_ms: {}",
                reply.encode()
            );
            overloaded += 1;
        }
    }
    assert_eq!(ok + overloaded, 4 * N as u64);
    assert!(ok >= 1, "at least one request must get through");
    assert!(
        overloaded >= 1,
        "4N simultaneous slow requests against N slots must shed"
    );
    // Every success computed the same Monte Carlo answer.
    assert!(deltas.iter().all(|d| d == &deltas[0]));
    // The stats counter accounts every shed exactly once.
    let shed = server.service().stats().shed.load(Ordering::Relaxed);
    assert_eq!(shed, overloaded, "shed counter must match rejections");
    let stats = round_trip(addr, r#"{"kind":"stats"}"#);
    assert_eq!(
        stats
            .get("result")
            .and_then(|r| r.get("shed"))
            .and_then(Json::as_u64),
        Some(shed),
        "stats must report the shed count"
    );
    server.shutdown();
}

/// Acceptance: a retrying client with a sufficient deadline completes
/// every request against an overloaded server, deterministically under a
/// fixed backoff seed.
#[test]
fn retrying_clients_complete_all_requests_against_an_overloaded_server() {
    const CLIENTS: u64 = 6;
    const CALLS: u64 = 3;
    let netlist = bench_text();
    let server = start_server(1, 8);
    let addr = server.tcp_addr().unwrap();
    let handles: Vec<_> = (0..CLIENTS)
        .map(|k| {
            let netlist = netlist.clone();
            std::thread::spawn(move || {
                let mut config =
                    ClientConfig::new(Endpoint::Tcp(format!("127.0.0.1:{}", addr.port())));
                config.deadline = Duration::from_secs(120);
                config.backoff_seed = k; // fixed per client, reproducible
                config.retry_budget = 100.0;
                config.base_backoff = Duration::from_millis(5);
                config.max_backoff = Duration::from_millis(100);
                let client = Client::new(config);
                let mut deltas = Vec::new();
                for i in 0..CALLS {
                    let result = client
                        .call(&slow_mc_frame(&netlist, k * 100 + i))
                        .expect("sufficient deadline must complete");
                    deltas.push(result.get("delta").map(Json::encode).unwrap());
                }
                (deltas, client.attempts(), client.retries())
            })
        })
        .collect();
    let mut all_deltas = Vec::new();
    let mut total_attempts = 0;
    let mut total_retries = 0;
    for h in handles {
        let (deltas, attempts, retries) = h.join().expect("client thread panicked");
        all_deltas.extend(deltas);
        total_attempts += attempts;
        total_retries += retries;
    }
    assert_eq!(all_deltas.len() as u64, CLIENTS * CALLS);
    assert!(all_deltas.iter().all(|d| d == &all_deltas[0]));
    assert_eq!(total_attempts, CLIENTS * CALLS + total_retries);
    server.shutdown();
}

#[test]
fn health_answers_over_the_wire_and_is_admission_exempt() {
    let netlist = bench_text();
    let server = start_server(1, 8);
    let addr = server.tcp_addr().unwrap();
    // Saturate the single admission slot with a slow request…
    let busy = {
        let frame = slow_mc_frame(&netlist, 1);
        std::thread::spawn(move || round_trip(addr, &frame))
    };
    std::thread::sleep(Duration::from_millis(100));
    // …and health must still answer, reporting readiness and gauges.
    let reply = round_trip(addr, r#"{"kind":"health","id":"h1"}"#);
    assert_eq!(reply.get("ok").and_then(Json::as_bool), Some(true));
    assert_eq!(reply.get("kind").and_then(Json::as_str), Some("health"));
    assert_eq!(reply.get("id").and_then(Json::as_str), Some("h1"));
    let result = reply.get("result").unwrap();
    assert_eq!(result.get("ready").and_then(Json::as_bool), Some(true));
    assert_eq!(result.get("draining").and_then(Json::as_bool), Some(false));
    assert_eq!(result.get("max_inflight").and_then(Json::as_u64), Some(1));
    assert!(result.get("queue_depth").and_then(Json::as_u64).is_some());
    assert!(result.get("inflight").and_then(Json::as_u64).is_some());
    let reply = busy.join().unwrap();
    assert_eq!(reply.get("ok").and_then(Json::as_bool), Some(true));
    server.shutdown();
}
