//! Persistence tests driven through the public service API: a restarted
//! service must serve previously-seen circuits from the on-disk artifact
//! store without recomputing them, corrupted artifacts must be quarantined
//! and recomputed (never served), and an unusable cache directory must
//! degrade the service to in-memory operation instead of failing requests.

// Test helpers may unwrap: a panic here is a test failure, not a crash path.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use relogic_serve::json::{self, Json};
use relogic_serve::{Service, ServiceConfig};
use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

const SMALL: &str = "INPUT(a)\\nINPUT(b)\\nOUTPUT(y)\\nt = NAND(a, b)\\ny = NOT(t)\\n";

fn temp_dir(tag: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "relogic-serve-persist-{tag}-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn service_with_dir(dir: Option<PathBuf>) -> Service {
    Service::new(ServiceConfig {
        timeout_ms: 0,
        cache_dir: dir,
        ..ServiceConfig::default()
    })
}

fn stats_of(service: &Service) -> Json {
    let reply = service.handle_line(r#"{"kind":"stats"}"#);
    json::parse(reply.trim())
        .unwrap()
        .get("result")
        .unwrap()
        .clone()
}

fn disk_counter(stats: &Json, field: &str) -> u64 {
    stats
        .get("disk")
        .unwrap()
        .get(field)
        .and_then(Json::as_u64)
        .unwrap()
}

#[test]
fn warm_restart_serves_observability_from_disk_without_recomputing() {
    let dir = temp_dir("warm");
    let frame = format!(r#"{{"kind":"observability","netlist":"{SMALL}"}}"#);

    // Cold service: computes everything and writes through to disk.
    let cold = service_with_dir(Some(dir.clone()));
    let cold_reply = cold.handle_line(&frame);
    assert!(cold_reply.contains("\"ok\":true"), "{cold_reply}");
    let cold_stats = stats_of(&cold);
    assert_eq!(
        cold_stats.get("cache_dir").and_then(Json::as_str),
        Some("ready")
    );
    assert!(disk_counter(&cold_stats, "disk_writes") >= 2, "meta + obs");
    assert!(disk_counter(&cold_stats, "bytes_on_disk") > 0);
    drop(cold);

    // Warm service: a fresh process image pointed at the same directory
    // must produce the bit-identical answer without running the analysis.
    let warm = service_with_dir(Some(dir.clone()));
    let warm_reply = warm.handle_line(&frame);
    assert_eq!(cold_reply, warm_reply, "restart changed the answer");
    let warm_counters = warm.cache().counters();
    assert_eq!(
        warm_counters.observability_computed.load(Ordering::Relaxed),
        0,
        "warm restart must not recompute observability"
    );
    let warm_stats = stats_of(&warm);
    assert!(disk_counter(&warm_stats, "disk_hits") >= 1);
    assert_eq!(disk_counter(&warm_stats, "corrupt_quarantined"), 0);

    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn warm_restart_reuses_weights_and_tapes_too() {
    let dir = temp_dir("kinds");
    let analyze = format!(r#"{{"kind":"analyze","netlist":"{SMALL}","eps":0.1}}"#);
    let mc = format!(
        r#"{{"kind":"monte_carlo","netlist":"{SMALL}","patterns":4096,"seed":3,"threads":1}}"#
    );

    let cold = service_with_dir(Some(dir.clone()));
    let cold_analyze = cold.handle_line(&analyze);
    let cold_mc = cold.handle_line(&mc);
    assert!(cold_analyze.contains("\"ok\":true"), "{cold_analyze}");
    assert!(cold_mc.contains("\"ok\":true"), "{cold_mc}");
    drop(cold);

    let warm = service_with_dir(Some(dir.clone()));
    assert_eq!(cold_analyze, warm.handle_line(&analyze));
    assert_eq!(cold_mc, warm.handle_line(&mc));
    let counters = warm.cache().counters();
    assert_eq!(counters.weights_computed.load(Ordering::Relaxed), 0);
    assert_eq!(counters.tapes_compiled.load(Ordering::Relaxed), 0);

    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn corrupted_artifacts_are_quarantined_and_recomputed_never_served() {
    let dir = temp_dir("corrupt");
    let frame = format!(r#"{{"kind":"observability","netlist":"{SMALL}"}}"#);

    let cold = service_with_dir(Some(dir.clone()));
    let cold_reply = cold.handle_line(&frame);
    assert!(cold_reply.contains("\"ok\":true"), "{cold_reply}");
    drop(cold);

    // Flip one payload byte in every stored artifact.
    let mut flipped = 0;
    for entry in fs::read_dir(&dir).unwrap() {
        let path = entry.unwrap().path();
        let mut bytes = fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        fs::write(&path, &bytes).unwrap();
        flipped += 1;
    }
    assert!(
        flipped >= 2,
        "expected at least meta + observability on disk"
    );

    // The warm service must detect the corruption, quarantine the files,
    // recompute, and still answer bit-identically.
    let warm = service_with_dir(Some(dir.clone()));
    let warm_reply = warm.handle_line(&frame);
    assert_eq!(cold_reply, warm_reply, "corruption leaked into the answer");
    let warm_stats = stats_of(&warm);
    assert!(disk_counter(&warm_stats, "corrupt_quarantined") >= 1);
    assert_eq!(
        warm_stats.get("cache_dir").and_then(Json::as_str),
        Some("ready"),
        "corruption quarantines files, it does not degrade the tier"
    );
    let corrupt_files = fs::read_dir(&dir)
        .unwrap()
        .filter(|e| {
            e.as_ref()
                .unwrap()
                .path()
                .extension()
                .is_some_and(|ext| ext == "corrupt")
        })
        .count();
    assert!(corrupt_files >= 1, "quarantine must rename, not delete");

    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn unusable_cache_dir_degrades_to_memory_and_keeps_serving() {
    // A regular file where the cache directory should be: create_dir_all
    // fails, the tier degrades at open, and every request still succeeds.
    let blocker = temp_dir("degraded");
    fs::write(&blocker, b"not a directory").unwrap();

    let svc = service_with_dir(Some(blocker.clone()));
    let frame = format!(r#"{{"kind":"analyze","netlist":"{SMALL}","eps":0.1}}"#);
    let reply = svc.handle_line(&frame);
    assert!(reply.contains("\"ok\":true"), "{reply}");

    let stats = stats_of(&svc);
    assert_eq!(
        stats.get("cache_dir").and_then(Json::as_str),
        Some("degraded")
    );
    assert_eq!(disk_counter(&stats, "disk_hits"), 0);
    assert_eq!(disk_counter(&stats, "bytes_on_disk"), 0);

    let health = svc.handle_line(r#"{"kind":"health"}"#);
    let doc = json::parse(health.trim()).unwrap();
    assert_eq!(
        doc.get("result")
            .unwrap()
            .get("cache_dir")
            .and_then(Json::as_str),
        Some("degraded")
    );
    // Degradation must not affect readiness: memory-only is a supported mode.
    assert_eq!(
        doc.get("result")
            .unwrap()
            .get("ready")
            .and_then(Json::as_bool),
        Some(true)
    );

    let _ = fs::remove_file(&blocker);
}

#[test]
fn no_cache_dir_reports_none_and_stays_purely_in_memory() {
    let svc = service_with_dir(None);
    let frame = format!(r#"{{"kind":"observability","netlist":"{SMALL}"}}"#);
    assert!(svc.handle_line(&frame).contains("\"ok\":true"));
    let stats = stats_of(&svc);
    assert_eq!(stats.get("cache_dir").and_then(Json::as_str), Some("none"));
    assert_eq!(disk_counter(&stats, "disk_writes"), 0);
}
