//! Protocol-robustness tests over real sockets: malformed, truncated, and
//! oversized frames, unknown request kinds, and concurrent clients — the
//! server must answer every one with a typed error or a result, and never
//! panic, deadlock, or return non-deterministic Monte Carlo estimates.

// Test helpers may unwrap: a panic here is a test failure, not a crash path.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use relogic_serve::json::{self, Json};
use relogic_serve::{RequestLimits, Server, ServerConfig, ServiceConfig};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::os::unix::net::UnixStream;
use std::sync::atomic::Ordering;
use std::time::Duration;

const SMALL: &str = "INPUT(a)\\nINPUT(b)\\nOUTPUT(y)\\nt = NAND(a, b)\\ny = NOT(t)\\n";

fn start_tcp() -> Server {
    start_with(ServiceConfig {
        timeout_ms: 30_000,
        ..ServiceConfig::default()
    })
}

fn start_with(service: ServiceConfig) -> Server {
    Server::start(ServerConfig {
        tcp: Some("127.0.0.1:0".to_owned()),
        threads: 4,
        service,
        ..ServerConfig::default()
    })
    .unwrap()
}

fn connect(server: &Server) -> TcpStream {
    let stream = TcpStream::connect(server.tcp_addr().unwrap()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    stream
}

/// Sends one frame and reads one reply line.
fn round_trip(stream: &mut TcpStream, frame: &str) -> Json {
    stream.write_all(frame.as_bytes()).unwrap();
    stream.write_all(b"\n").unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    json::parse(line.trim()).unwrap_or_else(|e| panic!("bad reply {line:?}: {e}"))
}

fn error_code(reply: &Json) -> Option<String> {
    reply
        .get("error")?
        .get("code")
        .and_then(Json::as_str)
        .map(str::to_owned)
}

#[test]
fn malformed_frames_get_typed_errors_not_disconnects() {
    let server = start_tcp();
    let mut stream = connect(&server);
    for frame in [
        "not json at all",
        "{\"kind\":",
        "[1,2,3]",
        "\"just a string\"",
        "{}",
        "{\"kind\":\"launch_missiles\"}",
        "{\"kind\":42}",
        "{\"kind\":\"analyze\"}",
        "{\"kind\":\"analyze\",\"netlist\":7}",
        "{\"kind\":\"analyze\",\"netlist\":\"INPUT(a)\",\"eps\":\"high\"}",
    ] {
        let reply = round_trip(&mut stream, frame);
        assert_eq!(
            reply.get("ok").and_then(Json::as_bool),
            Some(false),
            "{frame}"
        );
        assert_eq!(
            error_code(&reply).as_deref(),
            Some("bad_request"),
            "{frame}"
        );
    }
    // The connection survives all of that and still serves real work.
    let reply = round_trip(
        &mut stream,
        &format!(r#"{{"kind":"analyze","netlist":"{SMALL}","eps":0.1}}"#),
    );
    assert_eq!(reply.get("ok").and_then(Json::as_bool), Some(true));
    server.shutdown();
}

#[test]
fn netlist_and_analysis_errors_are_distinguished() {
    let server = start_tcp();
    let mut stream = connect(&server);
    let reply = round_trip(
        &mut stream,
        r#"{"kind":"analyze","netlist":"INPUT(a)\nOUTPUT(y)\ny = FROB(a)\n"}"#,
    );
    assert_eq!(error_code(&reply).as_deref(), Some("netlist_error"));
    let line = reply
        .get("error")
        .unwrap()
        .get("line")
        .and_then(Json::as_u64);
    assert_eq!(line, Some(3), "syntax errors carry the line number");

    let reply = round_trip(
        &mut stream,
        &format!(r#"{{"kind":"analyze","netlist":"{SMALL}","eps":1.5}}"#),
    );
    assert_eq!(error_code(&reply).as_deref(), Some("analysis_error"));

    let reply = round_trip(
        &mut stream,
        &format!(r#"{{"kind":"monte_carlo","netlist":"{SMALL}","patterns":0}}"#),
    );
    assert_eq!(error_code(&reply).as_deref(), Some("sim_error"));
    server.shutdown();
}

#[test]
fn oversized_frames_are_rejected_with_the_limit() {
    let server = start_with(ServiceConfig {
        max_request_bytes: 4096,
        ..ServiceConfig::default()
    });
    let mut stream = connect(&server);
    let huge = format!(r#"{{"kind":"analyze","netlist":"{}"}}"#, "x".repeat(10_000));
    stream.write_all(huge.as_bytes()).unwrap();
    stream.write_all(b"\n").unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    let reply = json::parse(line.trim()).unwrap();
    assert_eq!(error_code(&reply).as_deref(), Some("request_too_large"));
    assert_eq!(
        reply
            .get("error")
            .unwrap()
            .get("limit")
            .and_then(Json::as_u64),
        Some(4096)
    );
    // The server closes the connection after an oversized frame (the
    // stream is mid-frame and cannot be resynchronised). Depending on
    // what was still in flight the close shows up as EOF or a reset.
    let mut rest = String::new();
    match reader.read_to_string(&mut rest) {
        Ok(n) => assert_eq!(n, 0, "connection must be closed, got {rest:?}"),
        Err(e) => assert!(
            matches!(
                e.kind(),
                std::io::ErrorKind::ConnectionReset | std::io::ErrorKind::BrokenPipe
            ),
            "{e}"
        ),
    }
    server.shutdown();
}

#[test]
fn truncated_frame_at_eof_is_still_answered() {
    let server = start_tcp();
    let stream = connect(&server);
    let mut write_half = stream.try_clone().unwrap();
    // No trailing newline, then a write-side shutdown: the server must
    // promote the partial frame and answer before closing.
    write_half.write_all(br#"{"kind":"stats"}"#).unwrap();
    write_half.shutdown(std::net::Shutdown::Write).unwrap();
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    let reply = json::parse(line.trim()).unwrap();
    assert_eq!(reply.get("ok").and_then(Json::as_bool), Some(true));
    assert_eq!(reply.get("kind").and_then(Json::as_str), Some("stats"));
    server.shutdown();
}

#[test]
fn request_ids_are_echoed_and_binary_garbage_is_survivable() {
    let server = start_tcp();
    let mut stream = connect(&server);
    let reply = round_trip(&mut stream, r#"{"kind":"stats","id":"req-77"}"#);
    assert_eq!(reply.get("id").and_then(Json::as_str), Some("req-77"));

    // Invalid UTF-8 bytes in a frame: typed bad_request, connection lives.
    stream.write_all(&[0xff, 0xfe, b'{', 0x80, b'\n']).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    let reply = json::parse(line.trim()).unwrap();
    assert_eq!(error_code(&reply).as_deref(), Some("bad_request"));
    let reply = round_trip(&mut stream, r#"{"kind":"stats"}"#);
    assert_eq!(reply.get("ok").and_then(Json::as_bool), Some(true));
    server.shutdown();
}

#[test]
fn limits_cap_eps_points_patterns_and_threads() {
    let server = start_with(ServiceConfig {
        limits: RequestLimits {
            max_eps_points: 3,
            max_patterns: 10_000,
            max_threads: 2,
        },
        ..ServiceConfig::default()
    });
    let mut stream = connect(&server);
    let reply = round_trip(
        &mut stream,
        &format!(r#"{{"kind":"analyze","netlist":"{SMALL}","eps":[0.1,0.2,0.3,0.4]}}"#),
    );
    assert_eq!(error_code(&reply).as_deref(), Some("bad_request"));
    let reply = round_trip(
        &mut stream,
        &format!(r#"{{"kind":"monte_carlo","netlist":"{SMALL}","patterns":1000000}}"#),
    );
    assert_eq!(error_code(&reply).as_deref(), Some("bad_request"));
    let reply = round_trip(
        &mut stream,
        &format!(r#"{{"kind":"monte_carlo","netlist":"{SMALL}","threads":64}}"#),
    );
    assert_eq!(error_code(&reply).as_deref(), Some("bad_request"));
    server.shutdown();
}

#[test]
fn unix_socket_serves_the_same_protocol() {
    let path = std::env::temp_dir().join(format!("relogic-serve-test-{}.sock", std::process::id()));
    let server = Server::start(ServerConfig {
        unix: Some(path.clone()),
        threads: 2,
        ..ServerConfig::default()
    })
    .unwrap();
    let mut stream = UnixStream::connect(&path).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    stream
        .write_all(format!("{{\"kind\":\"observability\",\"netlist\":\"{SMALL}\"}}\n").as_bytes())
        .unwrap();
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    let reply = json::parse(line.trim()).unwrap();
    assert_eq!(
        reply.get("ok").and_then(Json::as_bool),
        Some(true),
        "{line}"
    );
    assert_eq!(
        reply.get("kind").and_then(Json::as_str),
        Some("observability")
    );
    server.shutdown();
    assert!(!path.exists(), "socket file unlinked on shutdown");
}

#[test]
fn concurrent_clients_hammering_one_cached_circuit() {
    let server = start_tcp();
    let addr = server.tcp_addr().unwrap();
    const CLIENTS: usize = 10;
    const FRAMES_PER_CLIENT: usize = 8;
    let handles: Vec<_> = (0..CLIENTS)
        .map(|k| {
            std::thread::spawn(move || {
                let mut stream = TcpStream::connect(addr).unwrap();
                stream
                    .set_read_timeout(Some(Duration::from_secs(60)))
                    .unwrap();
                let mut deltas = Vec::new();
                for i in 0..FRAMES_PER_CLIENT {
                    // Mix request kinds and inject malformed frames to
                    // shake out interleaving bugs.
                    let frame = match (k + i) % 4 {
                        0 => format!(r#"{{"kind":"analyze","netlist":"{SMALL}","eps":0.1}}"#),
                        1 => format!(
                            r#"{{"kind":"monte_carlo","netlist":"{SMALL}","eps":0.1,"patterns":4096,"seed":9,"threads":{}}}"#,
                            1 + (k % 3)
                        ),
                        2 => "definitely not json".to_owned(),
                        _ => r#"{"kind":"stats"}"#.to_owned(),
                    };
                    stream.write_all(frame.as_bytes()).unwrap();
                    stream.write_all(b"\n").unwrap();
                    let mut reader = BufReader::new(stream.try_clone().unwrap());
                    let mut line = String::new();
                    reader.read_line(&mut line).unwrap();
                    let reply = json::parse(line.trim()).unwrap();
                    match (k + i) % 4 {
                        2 => assert_eq!(
                            reply.get("ok").and_then(Json::as_bool),
                            Some(false),
                            "{line}"
                        ),
                        1 => {
                            let delta = reply
                                .get("result")
                                .and_then(|r| r.get("delta"))
                                .map(Json::encode)
                                .unwrap_or_else(|| panic!("no delta in {line}"));
                            deltas.push(delta);
                        }
                        _ => assert_eq!(
                            reply.get("ok").and_then(Json::as_bool),
                            Some(true),
                            "{line}"
                        ),
                    }
                }
                deltas
            })
        })
        .collect();
    let mut all_mc: Vec<String> = Vec::new();
    for h in handles {
        all_mc.extend(h.join().expect("client thread panicked"));
    }
    // Same seed + patterns ⇒ every MC estimate is bit-identical no matter
    // which client ran it, on how many threads, in what interleaving.
    assert!(!all_mc.is_empty());
    assert!(
        all_mc.iter().all(|d| d == &all_mc[0]),
        "non-deterministic MC under concurrency: {all_mc:?}"
    );
    // All that traffic parsed the circuit exactly once.
    let counters = server.service().cache().counters();
    assert_eq!(
        counters
            .circuits_parsed
            .load(std::sync::atomic::Ordering::Relaxed),
        1
    );
    server.shutdown();
}

#[test]
fn idle_timeout_racing_graceful_drain_closes_exactly_once() {
    // An idle connection whose timeout expires while the server drains
    // exercises both close paths at once; the active-connection gauge
    // must end at exactly zero (a double decrement would wrap the
    // unsigned counter to a huge value).
    let server = Server::start(ServerConfig {
        tcp: Some("127.0.0.1:0".to_owned()),
        threads: 2,
        idle_timeout_ms: 300,
        ..ServerConfig::default()
    })
    .unwrap();
    let service = server.service().clone();
    let mut stream = connect(&server);
    let reply = round_trip(&mut stream, r#"{"kind":"stats"}"#);
    assert_eq!(reply.get("ok").and_then(Json::as_bool), Some(true));
    let stats = service.stats();
    assert_eq!(stats.connections_accepted.load(Ordering::Relaxed), 1);
    assert_eq!(stats.connections_active.load(Ordering::Relaxed), 1);
    // Let the connection go idle right up to its timeout, then drain
    // while the idle close is happening.
    std::thread::sleep(Duration::from_millis(250));
    server.shutdown();
    // Whatever the connection saw — idle close, drain farewell, or a
    // reset — drain has joined every thread, so the gauge is settled.
    let mut rest = String::new();
    let _ = BufReader::new(stream).read_to_string(&mut rest);
    let stats = service.stats();
    assert_eq!(
        stats.connections_active.load(Ordering::Relaxed),
        0,
        "active gauge must settle at zero, not wrap"
    );
    assert_eq!(stats.connections_accepted.load(Ordering::Relaxed), 1);
}

#[test]
fn draining_server_answers_shutting_down_then_closes() {
    let server = start_tcp();
    let mut stream = connect(&server);
    // Prove the connection works first.
    let reply = round_trip(&mut stream, r#"{"kind":"stats"}"#);
    assert_eq!(reply.get("ok").and_then(Json::as_bool), Some(true));
    server.shutdown();
    // After shutdown the listener is gone; existing connections were told
    // to go away with a typed error or closed outright.
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut line = String::new();
    match reader.read_line(&mut line) {
        Ok(0) => {} // closed without a farewell — acceptable
        Ok(_) => {
            let reply = json::parse(line.trim()).unwrap();
            assert_eq!(error_code(&reply).as_deref(), Some("shutting_down"));
        }
        Err(_) => {} // reset — also a close
    }
}
