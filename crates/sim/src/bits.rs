//! Biased random bit generation for 64-lane parallel fault injection.
//!
//! The Monte Carlo engine needs, for every gate and every 64-pattern block,
//! a word whose bits are independent Bernoulli(ε) draws. Generating these
//! bit-by-bit would dominate the runtime, so [`BiasedBits`] uses the classic
//! binary-expansion construction: writing `p = 0.b₁b₂…b_k` in binary and
//! folding fresh uniform words `u_t` from the least significant digit up,
//!
//! ```text
//! r ← 0;  for t = k..1:  r ← if b_t { u_t | r } else { u_t & r }
//! ```
//!
//! yields `P(bit set) = Σ b_t 2^-t = p` exactly (to the chosen resolution),
//! at a cost of one RNG word per digit.

use rand::RngCore;

/// Default resolution (binary digits of `p`) used by the Monte Carlo engine.
pub const DEFAULT_RESOLUTION: u32 = 24;

/// Generator of 64-bit words whose bits are independent `Bernoulli(p)`.
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// use relogic_sim::BiasedBits;
///
/// let mut rng = rand::rngs::SmallRng::seed_from_u64(1);
/// let gen = BiasedBits::new(0.25, 24);
/// let mut ones = 0u32;
/// for _ in 0..1024 {
///     ones += gen.next_word(&mut rng).count_ones();
/// }
/// let mean = f64::from(ones) / (1024.0 * 64.0);
/// assert!((mean - 0.25).abs() < 0.02);
/// ```
#[derive(Clone, Copy, Debug)]
pub struct BiasedBits {
    /// `p` quantized to `resolution` binary digits, stored as an integer in
    /// `[0, 2^resolution]`.
    quantized: u64,
    resolution: u32,
}

impl BiasedBits {
    /// Creates a generator for probability `p`, quantized to `resolution`
    /// binary digits (1 ..= 32).
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]` or `resolution` is out of range.
    #[must_use]
    pub fn new(p: f64, resolution: u32) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability {p} out of [0,1]");
        assert!(
            (1..=32).contains(&resolution),
            "resolution {resolution} out of 1..=32"
        );
        let scale = f64::from(u32::try_from(1u64 << resolution).unwrap_or(u32::MAX));
        let scale = if resolution == 32 {
            4_294_967_296.0
        } else {
            scale
        };
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let quantized = (p * scale).round() as u64;
        BiasedBits {
            quantized,
            resolution,
        }
    }

    /// `p` quantized to `resolution` binary digits, as an integer in
    /// `[0, 2^resolution]`. The tape executor reuses this so both Monte
    /// Carlo paths realize the exact same quantized probability.
    pub(crate) fn quantized(&self) -> u64 {
        self.quantized
    }

    /// The probability actually realized after quantization.
    #[must_use]
    pub fn effective_probability(&self) -> f64 {
        #[allow(clippy::cast_precision_loss)]
        let q = self.quantized as f64;
        q / f64::from(self.resolution).exp2()
    }

    /// Draws one 64-lane biased word.
    #[inline]
    pub fn next_word<R: RngCore + ?Sized>(&self, rng: &mut R) -> u64 {
        if self.quantized == 0 {
            return 0;
        }
        if self.quantized >= 1u64 << self.resolution {
            return u64::MAX;
        }
        // Skip trailing zero digits of the quantized probability: they only
        // AND in uniform words below every set digit, which is equivalent to
        // starting the fold at the lowest set digit.
        let tz = self.quantized.trailing_zeros();
        let mut r = rng.next_u64();
        for t in (tz + 1)..self.resolution {
            let u = rng.next_u64();
            r = if self.quantized >> t & 1 == 1 {
                u | r
            } else {
                u & r
            };
        }
        r
    }
}

/// Statistical helpers for Monte Carlo estimates.
pub mod stats {
    /// Standard error of an estimated proportion `p` from `n` samples.
    #[must_use]
    pub fn proportion_std_error(p: f64, n: u64) -> f64 {
        if n == 0 {
            return f64::NAN;
        }
        #[allow(clippy::cast_precision_loss)]
        let nf = n as f64;
        (p.clamp(0.0, 1.0) * (1.0 - p.clamp(0.0, 1.0)) / nf).sqrt()
    }

    /// Half-width of the ~95% normal-approximation confidence interval.
    #[must_use]
    pub fn ci95_half_width(p: f64, n: u64) -> f64 {
        1.96 * proportion_std_error(p, n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn measured_mean(p: f64, resolution: u32, words: usize) -> f64 {
        let mut rng = SmallRng::seed_from_u64(0xDEADBEEF);
        let gen = BiasedBits::new(p, resolution);
        let ones: u64 = (0..words)
            .map(|_| u64::from(gen.next_word(&mut rng).count_ones()))
            .sum();
        #[allow(clippy::cast_precision_loss)]
        let total = (words * 64) as f64;
        #[allow(clippy::cast_precision_loss)]
        let ones = ones as f64;
        ones / total
    }

    #[test]
    fn extremes_are_exact() {
        let mut rng = SmallRng::seed_from_u64(7);
        assert_eq!(BiasedBits::new(0.0, 24).next_word(&mut rng), 0);
        assert_eq!(BiasedBits::new(1.0, 24).next_word(&mut rng), u64::MAX);
    }

    #[test]
    fn dyadic_probabilities_have_no_quantization_error() {
        for &(p, res) in &[(0.5, 8), (0.25, 8), (0.125, 24), (0.75, 4)] {
            let gen = BiasedBits::new(p, res);
            assert!((gen.effective_probability() - p).abs() < 1e-15, "{p}");
        }
    }

    #[test]
    fn means_converge_for_various_probabilities() {
        for &p in &[0.05, 0.1, 0.3, 0.5, 0.7, 0.95] {
            let mean = measured_mean(p, 24, 20_000);
            assert!((mean - p).abs() < 0.005, "p={p} measured mean {mean}");
        }
    }

    #[test]
    fn low_resolution_quantizes_visibly() {
        let gen = BiasedBits::new(0.3, 2);
        // 0.3 * 4 rounds to 1 -> effective 0.25
        assert!((gen.effective_probability() - 0.25).abs() < 1e-15);
    }

    #[test]
    fn lanes_are_independent_ish() {
        // Check adjacent-lane correlation is near zero for p = 0.5.
        let mut rng = SmallRng::seed_from_u64(3);
        let gen = BiasedBits::new(0.5, 24);
        let mut both = 0u64;
        let mut n = 0u64;
        for _ in 0..10_000 {
            let w = gen.next_word(&mut rng);
            both += (w & (w >> 1) & 0x7FFF_FFFF_FFFF_FFFF).count_ones() as u64;
            n += 63;
        }
        #[allow(clippy::cast_precision_loss)]
        let rate = both as f64 / n as f64;
        assert!((rate - 0.25).abs() < 0.01, "pairwise rate {rate}");
    }

    #[test]
    fn stats_helpers() {
        let se = stats::proportion_std_error(0.5, 10_000);
        assert!((se - 0.005).abs() < 1e-12);
        assert!(stats::ci95_half_width(0.5, 10_000) > se);
        assert!(stats::proportion_std_error(0.5, 0).is_nan());
    }

    #[test]
    #[should_panic(expected = "out of [0,1]")]
    fn invalid_probability_panics() {
        let _ = BiasedBits::new(1.5, 24);
    }
}
