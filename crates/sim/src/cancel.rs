//! Cooperative cancellation and deadlines for long-running compute paths.
//!
//! A [`CancelToken`] is a cheap, cloneable handle around an `Arc` of two
//! atomics — a cancel flag and a deadline expressed in nanoseconds past the
//! token's creation instant — plus an optional parent link so a request
//! token fans out to per-stage child tokens: cancelling (or expiring) the
//! parent cancels every child, while a child can carry its own tighter
//! deadline without affecting siblings.
//!
//! Engines poll [`CancelToken::check`] at their natural work boundaries
//! (chunk hand-out, pattern block, BDD gate build, sweep node, estimator
//! tier). A fired check returns the typed [`Cancelled`] payload — how long
//! the work had been running and which check site noticed — which the
//! `relogic` error ladder surfaces verbatim so callers can tell "cancelled
//! after 52 ms in the sweep loop" from an ordinary failure.
//!
//! The determinism contract: cancellation checks are *read-only
//! early-exits*. Work that runs to completion under a deadline performs
//! exactly the same arithmetic, in the same merge order, as work run with
//! no token at all — a completed run is bit-identical either way. A token
//! only ever changes *whether* an answer is produced, never the answer.

use std::error::Error;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Sentinel deadline meaning "none": the token never expires on its own.
const NO_DEADLINE: u64 = u64::MAX;

#[derive(Debug)]
struct TokenInner {
    /// Explicit cancellation (disconnect, drain, user abort).
    cancelled: AtomicBool,
    /// Deadline in nanoseconds after `epoch`; [`NO_DEADLINE`] when unset.
    deadline_nanos: AtomicU64,
    /// Creation instant; all deadline math is relative to this.
    epoch: Instant,
    /// Parent link for derived tokens: a fired parent fires every child.
    parent: Option<Arc<TokenInner>>,
}

impl TokenInner {
    fn flag_set(&self) -> bool {
        if self.cancelled.load(Ordering::Relaxed) {
            return true;
        }
        match &self.parent {
            Some(parent) => parent.flag_set(),
            None => false,
        }
    }

    fn is_cancelled(&self) -> bool {
        if self.cancelled.load(Ordering::Relaxed) {
            return true;
        }
        let deadline = self.deadline_nanos.load(Ordering::Relaxed);
        if deadline != NO_DEADLINE && Self::nanos(self.epoch.elapsed()) >= deadline {
            return true;
        }
        match &self.parent {
            Some(parent) => parent.is_cancelled(),
            None => false,
        }
    }

    /// Saturating `Duration` → nanos; ~584 years before saturation.
    fn nanos(d: Duration) -> u64 {
        u64::try_from(d.as_nanos()).unwrap_or(NO_DEADLINE - 1)
    }
}

/// A cloneable cancellation handle shared by a request and its workers.
///
/// Clones share state: cancelling any clone cancels them all. Use
/// [`CancelToken::child`] to derive a *linked but separate* token that
/// observes the parent's cancellation while adding its own flag/deadline.
#[derive(Clone, Debug)]
pub struct CancelToken {
    inner: Arc<TokenInner>,
}

impl Default for CancelToken {
    fn default() -> Self {
        Self::new()
    }
}

impl CancelToken {
    /// A token that never fires on its own (no deadline, not cancelled).
    ///
    /// This is the "no deadline" object threaded through the legacy entry
    /// points; its `is_cancelled` costs two relaxed loads and a compare.
    #[must_use]
    pub fn new() -> Self {
        CancelToken {
            inner: Arc::new(TokenInner {
                cancelled: AtomicBool::new(false),
                deadline_nanos: AtomicU64::new(NO_DEADLINE),
                epoch: Instant::now(),
                parent: None,
            }),
        }
    }

    /// A token that expires `deadline` after this call.
    #[must_use]
    pub fn with_deadline(deadline: Duration) -> Self {
        let token = Self::new();
        token.set_deadline(deadline);
        token
    }

    /// Arms (or re-arms) the deadline to fire `deadline` from *now*.
    pub fn set_deadline(&self, deadline: Duration) {
        let fire_at = TokenInner::nanos(self.inner.epoch.elapsed())
            .saturating_add(TokenInner::nanos(deadline))
            .min(NO_DEADLINE - 1);
        self.inner.deadline_nanos.store(fire_at, Ordering::Relaxed);
    }

    /// Fires the token: every clone and every derived child is cancelled.
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::Relaxed);
    }

    /// Whether the token has fired (explicitly or via any deadline up the
    /// parent chain). Cheap enough for per-chunk / per-gate polling.
    #[must_use]
    pub fn is_cancelled(&self) -> bool {
        self.inner.is_cancelled()
    }

    /// Whether the token (or an ancestor) was fired by an explicit
    /// [`CancelToken::cancel`] call, as opposed to a deadline expiry.
    /// Lets a caller that cancels for different reasons (client
    /// disconnect, graceful drain) label the outcome accordingly.
    #[must_use]
    pub fn was_cancelled_explicitly(&self) -> bool {
        self.inner.flag_set()
    }

    /// Derives a child token: fired whenever this token is, and
    /// independently cancellable/deadline-able without affecting siblings.
    #[must_use]
    pub fn child(&self) -> CancelToken {
        CancelToken {
            inner: Arc::new(TokenInner {
                cancelled: AtomicBool::new(false),
                deadline_nanos: AtomicU64::new(NO_DEADLINE),
                epoch: Instant::now(),
                parent: Some(Arc::clone(&self.inner)),
            }),
        }
    }

    /// Time since the token was created — the `after` half of a
    /// [`Cancelled`] payload.
    #[must_use]
    pub fn elapsed(&self) -> Duration {
        self.inner.epoch.elapsed()
    }

    /// Polls the token; returns the typed payload if it has fired.
    ///
    /// `checked_at` names the check site (a static label like
    /// `"mc_chunk"` or `"bdd_gate"`) so the error says where the work was
    /// interrupted.
    ///
    /// # Errors
    ///
    /// [`Cancelled`] when the token (or any ancestor) has fired.
    pub fn check(&self, checked_at: &'static str) -> Result<(), Cancelled> {
        if self.is_cancelled() {
            Err(Cancelled {
                after: self.elapsed(),
                checked_at,
            })
        } else {
            Ok(())
        }
    }
}

/// Typed payload of a cancelled computation: never a partial result, never
/// a panic — the work unwound cleanly at a check site.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Cancelled {
    /// How long the work had been running when the check fired.
    pub after: Duration,
    /// The check site that noticed (static label, one per engine loop).
    pub checked_at: &'static str,
}

impl fmt::Display for Cancelled {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cancelled after {} ms (at {})",
            self.after.as_millis(),
            self.checked_at
        )
    }
}

impl Error for Cancelled {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_token_never_fires() {
        let t = CancelToken::new();
        assert!(!t.is_cancelled());
        assert!(t.check("site").is_ok());
    }

    #[test]
    fn cancel_fires_all_clones() {
        let t = CancelToken::new();
        let clone = t.clone();
        clone.cancel();
        assert!(t.is_cancelled());
        let err = match t.check("mc_chunk") {
            Err(e) => e,
            Ok(()) => panic!("expected a fired token"),
        };
        assert_eq!(err.checked_at, "mc_chunk");
        assert!(err.to_string().contains("mc_chunk"), "{err}");
    }

    #[test]
    fn deadline_fires_after_elapse() {
        let t = CancelToken::with_deadline(Duration::from_millis(1));
        std::thread::sleep(Duration::from_millis(5));
        assert!(t.is_cancelled());
    }

    #[test]
    fn generous_deadline_does_not_fire() {
        let t = CancelToken::with_deadline(Duration::from_secs(3600));
        assert!(!t.is_cancelled());
    }

    #[test]
    fn child_observes_parent_cancel_but_not_vice_versa() {
        let parent = CancelToken::new();
        let child = parent.child();
        let sibling = parent.child();
        child.cancel();
        assert!(child.is_cancelled());
        assert!(!parent.is_cancelled(), "child cancel must not leak up");
        assert!(
            !sibling.is_cancelled(),
            "child cancel must not hit siblings"
        );
        parent.cancel();
        assert!(sibling.is_cancelled(), "parent cancel reaches every child");
    }

    #[test]
    fn child_observes_parent_deadline() {
        let parent = CancelToken::with_deadline(Duration::from_millis(1));
        let child = parent.child();
        std::thread::sleep(Duration::from_millis(5));
        assert!(child.is_cancelled());
    }

    #[test]
    fn token_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CancelToken>();
        assert_send_sync::<Cancelled>();
    }
}
