//! Deterministic, seed-driven fault injection for the execution stack.
//!
//! The DATE 2007 paper models every gate as a fault site that fails with a
//! known probability ε; this module applies the same discipline to the
//! software that *computes* those reliabilities. Every layer of the serving
//! stack — worker-pool jobs, request execution, connection I/O, the
//! artifact cache — exposes an injection site ([`ChaosSite`]) with a
//! configurable, seeded failure probability, so the failure paths built in
//! earlier PRs (typed errors, watchdog timeouts, panic containment, LRU
//! eviction) can be exercised under *injected* faults instead of waiting
//! for production to find them.
//!
//! # Determinism contract
//!
//! Every injection decision is a pure function of `(seed, site, n)` where
//! `n` is the per-site draw counter: draw `n` at site `s` fires iff
//! `splitmix64(seed ⊕ salt(s) ⊕ mix(n)) < p·2⁶⁴`, subject to the site's
//! event budget. Two runs with the same seed therefore produce the same
//! *decision sequence per site*. Under concurrency the thread interleaving
//! still decides **which request** absorbs event `n`, so chaos tests must
//! assert interleaving-independent invariants (no hang, no wrong answer
//! for requests that succeed, bounded memory, clean drain) rather than
//! exact event placement. The one exception is a site with
//! `probability = 1.0` and `limit = k`: exactly the first `k` draws fire,
//! whichever threads make them.
//!
//! # Zero cost when disabled
//!
//! The module only exists under `#[cfg(any(test, feature = "chaos"))]`;
//! release builds without the `chaos` feature compile every injection hook
//! to nothing (see the feature-gate pin in the crate root and the CI
//! `chaos-smoke` job's `cargo tree -e features` check).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// One injection point in the stack.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChaosSite {
    /// A worker-pool job panics instead of running (contained by the
    /// pool's per-job `catch_unwind`; in `relogic-serve` the job is a
    /// whole connection, so the connection drops).
    PoolPanic,
    /// A worker-pool job is delayed by [`ChaosConfig::delay`] before it
    /// runs (latency spike).
    PoolDelay,
    /// Request execution panics mid-analysis (in `relogic-serve` the
    /// watchdog turns this into exactly one `internal` wire error).
    ExecPanic,
    /// Request execution is delayed by [`ChaosConfig::delay`] first.
    ExecDelay,
    /// A connection read stalls for [`ChaosConfig::delay`] before any
    /// bytes arrive (slow peer).
    ReadStall,
    /// A connection read returns a single byte (torn frame: the frame
    /// loop must reassemble across many short reads).
    TornRead,
    /// A connection write fails after writing only half its bytes
    /// (mid-write EOF: the peer sees a truncated frame, then a close).
    WriteEof,
    /// The artifact cache evicts everything before the lookup (eviction
    /// churn: every request recompiles and re-materializes).
    CacheEvict,
    /// The artifact cache fails the lookup outright (simulated
    /// materialization failure, surfaced as a typed `internal` error).
    CacheFail,
    /// A disk-store write crashes after flushing only the first half of
    /// the bytes to the *final* path (a non-atomic filesystem or a power
    /// cut mid-write): the next read must quarantine the truncated file.
    DiskShortWrite,
    /// A disk-store write completes its temp file but dies before the
    /// atomic rename (torn rename): the artifact is absent on restart and
    /// the stale `*.tmp` must be garbage-collectable.
    DiskTornRename,
    /// A disk-store fsync reports failure after the data was handed to
    /// the kernel: the write is reported failed even though the bytes may
    /// later prove durable.
    DiskFsyncFail,
    /// A disk-store read observes one flipped bit in the returned buffer
    /// (bit rot / torn sector): the checksum must reject it and the file
    /// must be quarantined, never decoded.
    DiskBitFlip,
}

/// Number of distinct sites (array-index bound).
pub const SITE_COUNT: usize = 13;

impl ChaosSite {
    /// All sites, in index order.
    pub const ALL: [ChaosSite; SITE_COUNT] = [
        ChaosSite::PoolPanic,
        ChaosSite::PoolDelay,
        ChaosSite::ExecPanic,
        ChaosSite::ExecDelay,
        ChaosSite::ReadStall,
        ChaosSite::TornRead,
        ChaosSite::WriteEof,
        ChaosSite::CacheEvict,
        ChaosSite::CacheFail,
        ChaosSite::DiskShortWrite,
        ChaosSite::DiskTornRename,
        ChaosSite::DiskFsyncFail,
        ChaosSite::DiskBitFlip,
    ];

    /// The site's dense index.
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            ChaosSite::PoolPanic => 0,
            ChaosSite::PoolDelay => 1,
            ChaosSite::ExecPanic => 2,
            ChaosSite::ExecDelay => 3,
            ChaosSite::ReadStall => 4,
            ChaosSite::TornRead => 5,
            ChaosSite::WriteEof => 6,
            ChaosSite::CacheEvict => 7,
            ChaosSite::CacheFail => 8,
            ChaosSite::DiskShortWrite => 9,
            ChaosSite::DiskTornRename => 10,
            ChaosSite::DiskFsyncFail => 11,
            ChaosSite::DiskBitFlip => 12,
        }
    }

    /// A stable human-readable name (used in stats and error messages).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            ChaosSite::PoolPanic => "pool_panic",
            ChaosSite::PoolDelay => "pool_delay",
            ChaosSite::ExecPanic => "exec_panic",
            ChaosSite::ExecDelay => "exec_delay",
            ChaosSite::ReadStall => "read_stall",
            ChaosSite::TornRead => "torn_read",
            ChaosSite::WriteEof => "write_eof",
            ChaosSite::CacheEvict => "cache_evict",
            ChaosSite::CacheFail => "cache_fail",
            ChaosSite::DiskShortWrite => "disk_short_write",
            ChaosSite::DiskTornRename => "disk_torn_rename",
            ChaosSite::DiskFsyncFail => "disk_fsync_fail",
            ChaosSite::DiskBitFlip => "disk_bit_flip",
        }
    }

    /// A per-site salt decorrelating the sites' decision streams.
    fn salt(self) -> u64 {
        // Any fixed distinct odd constants work; golden-ratio multiples.
        0x9e37_79b9_7f4a_7c15_u64.wrapping_mul(self.index() as u64 + 1)
    }
}

/// Per-site injection policy.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SitePolicy {
    /// Probability in `[0, 1]` that a draw at this site fires.
    pub probability: f64,
    /// Total events this site may fire across the process lifetime;
    /// `0` means unlimited. A site with `probability = 1.0` and
    /// `limit = k` fires on exactly its first `k` draws.
    pub limit: u64,
}

impl SitePolicy {
    /// A site that never fires.
    pub const OFF: SitePolicy = SitePolicy {
        probability: 0.0,
        limit: 0,
    };

    /// A site firing with probability `p`, unlimited events.
    #[must_use]
    pub fn with_probability(p: f64) -> SitePolicy {
        SitePolicy {
            probability: p,
            limit: 0,
        }
    }

    /// A site firing with probability `p`, at most `limit` times.
    #[must_use]
    pub fn limited(p: f64, limit: u64) -> SitePolicy {
        SitePolicy {
            probability: p,
            limit,
        }
    }
}

/// Full fault-injection configuration: a seed, per-site policies, and the
/// latency applied by delay/stall sites.
#[derive(Clone, Debug, PartialEq)]
pub struct ChaosConfig {
    /// Seed for every site's decision stream.
    pub seed: u64,
    /// Per-site policies, indexed by [`ChaosSite::index`].
    pub sites: [SitePolicy; SITE_COUNT],
    /// Sleep applied when a delay/stall site fires.
    pub delay: Duration,
}

impl ChaosConfig {
    /// A configuration with every site off.
    #[must_use]
    pub fn quiet(seed: u64) -> ChaosConfig {
        ChaosConfig {
            seed,
            sites: [SitePolicy::OFF; SITE_COUNT],
            delay: Duration::from_millis(20),
        }
    }

    /// Sets one site's policy (builder style).
    #[must_use]
    pub fn site(mut self, site: ChaosSite, policy: SitePolicy) -> ChaosConfig {
        self.sites[site.index()] = policy;
        self
    }

    /// The `worker` profile: injected panics and latency spikes in
    /// worker-pool jobs and request execution.
    #[must_use]
    pub fn worker_profile(seed: u64) -> ChaosConfig {
        ChaosConfig::quiet(seed)
            .site(ChaosSite::PoolPanic, SitePolicy::limited(0.10, 4))
            .site(ChaosSite::PoolDelay, SitePolicy::with_probability(0.15))
            .site(ChaosSite::ExecPanic, SitePolicy::limited(0.25, 6))
            .site(ChaosSite::ExecDelay, SitePolicy::with_probability(0.20))
    }

    /// The `io` profile: torn frames, stalled reads, mid-write EOF on
    /// serve connections.
    #[must_use]
    pub fn io_profile(seed: u64) -> ChaosConfig {
        ChaosConfig::quiet(seed)
            .site(ChaosSite::ReadStall, SitePolicy::with_probability(0.10))
            .site(ChaosSite::TornRead, SitePolicy::with_probability(0.30))
            .site(ChaosSite::WriteEof, SitePolicy::limited(0.15, 8))
    }

    /// The `cache` profile: forced eviction churn and simulated
    /// materialization failures in the artifact cache.
    #[must_use]
    pub fn cache_profile(seed: u64) -> ChaosConfig {
        ChaosConfig::quiet(seed)
            .site(ChaosSite::CacheEvict, SitePolicy::with_probability(0.50))
            .site(ChaosSite::CacheFail, SitePolicy::limited(0.25, 8))
    }

    /// The `disk` profile: short writes, torn renames, fsync failures,
    /// and read-time bit flips in the persistent artifact store. Failure
    /// sites carry finite budgets so every run dries up into a healthy
    /// store; the bit-flip site is unbudgeted because a quarantined read
    /// always heals by recompute.
    #[must_use]
    pub fn disk_profile(seed: u64) -> ChaosConfig {
        ChaosConfig::quiet(seed)
            .site(ChaosSite::DiskShortWrite, SitePolicy::limited(0.20, 4))
            .site(ChaosSite::DiskTornRename, SitePolicy::limited(0.20, 4))
            .site(ChaosSite::DiskFsyncFail, SitePolicy::limited(0.15, 4))
            .site(ChaosSite::DiskBitFlip, SitePolicy::with_probability(0.20))
    }

    /// The `all` profile: every fault class at reduced intensity.
    #[must_use]
    pub fn all_profile(seed: u64) -> ChaosConfig {
        ChaosConfig::quiet(seed)
            .site(ChaosSite::PoolPanic, SitePolicy::limited(0.05, 3))
            .site(ChaosSite::PoolDelay, SitePolicy::with_probability(0.10))
            .site(ChaosSite::ExecPanic, SitePolicy::limited(0.10, 4))
            .site(ChaosSite::ExecDelay, SitePolicy::with_probability(0.10))
            .site(ChaosSite::ReadStall, SitePolicy::with_probability(0.05))
            .site(ChaosSite::TornRead, SitePolicy::with_probability(0.15))
            .site(ChaosSite::WriteEof, SitePolicy::limited(0.08, 5))
            .site(ChaosSite::CacheEvict, SitePolicy::with_probability(0.25))
            .site(ChaosSite::CacheFail, SitePolicy::limited(0.10, 5))
            .site(ChaosSite::DiskShortWrite, SitePolicy::limited(0.10, 2))
            .site(ChaosSite::DiskTornRename, SitePolicy::limited(0.10, 2))
            .site(ChaosSite::DiskFsyncFail, SitePolicy::limited(0.08, 2))
            .site(ChaosSite::DiskBitFlip, SitePolicy::with_probability(0.10))
    }

    /// Parses a `--chaos-profile` spec: `NAME[:SEED]` where `NAME` is
    /// `worker`, `io`, `cache`, or `all` and `SEED` is a decimal u64
    /// (default 1).
    ///
    /// # Errors
    ///
    /// Returns a human-readable message for unknown profiles or malformed
    /// seeds.
    pub fn parse(spec: &str) -> Result<ChaosConfig, String> {
        let (name, seed) = match spec.split_once(':') {
            Some((name, seed)) => {
                let seed: u64 = seed
                    .parse()
                    .map_err(|_| format!("invalid chaos seed `{seed}` (expected a u64)"))?;
                (name, seed)
            }
            None => (spec, 1),
        };
        match name {
            "worker" => Ok(ChaosConfig::worker_profile(seed)),
            "io" => Ok(ChaosConfig::io_profile(seed)),
            "cache" => Ok(ChaosConfig::cache_profile(seed)),
            "disk" => Ok(ChaosConfig::disk_profile(seed)),
            "all" => Ok(ChaosConfig::all_profile(seed)),
            other => Err(format!(
                "unknown chaos profile `{other}` (expected worker, io, cache, disk, or all)"
            )),
        }
    }
}

/// SplitMix64 finalizer: a high-quality 64-bit mixing function.
fn splitmix64(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    x
}

/// A live fault injector: the configuration plus per-site draw and event
/// counters. Cheap to share (`Arc`) across every layer of the stack.
#[derive(Debug)]
pub struct Chaos {
    config: ChaosConfig,
    draws: [AtomicU64; SITE_COUNT],
    fired: [AtomicU64; SITE_COUNT],
}

impl Chaos {
    /// Builds a shared injector from a configuration.
    #[must_use]
    pub fn new(config: ChaosConfig) -> Arc<Chaos> {
        Arc::new(Chaos {
            config,
            draws: std::array::from_fn(|_| AtomicU64::new(0)),
            fired: std::array::from_fn(|_| AtomicU64::new(0)),
        })
    }

    /// The configuration this injector runs.
    #[must_use]
    pub fn config(&self) -> &ChaosConfig {
        &self.config
    }

    /// Draws one injection decision at `site`. Deterministic per the
    /// module-level contract; bumps the site's draw counter and, when it
    /// fires, the event counter (respecting the site's budget).
    #[must_use]
    pub fn should(&self, site: ChaosSite) -> bool {
        let idx = site.index();
        let policy = self.config.sites[idx];
        if policy.probability <= 0.0 {
            return false;
        }
        let n = self.draws[idx].fetch_add(1, Ordering::Relaxed);
        let hit = if policy.probability >= 1.0 {
            true
        } else {
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            let threshold = (policy.probability * u64::MAX as f64) as u64;
            let roll = splitmix64(
                self.config
                    .seed
                    .wrapping_add(site.salt())
                    .wrapping_add(splitmix64(n)),
            );
            roll < threshold
        };
        if !hit {
            return false;
        }
        if policy.limit == 0 {
            self.fired[idx].fetch_add(1, Ordering::Relaxed);
            return true;
        }
        // Budgeted site: claim one of the remaining events atomically so
        // `probability = 1.0, limit = k` fires on exactly the first k
        // draws process-wide.
        self.fired[idx]
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |f| {
                if f < policy.limit {
                    Some(f + 1)
                } else {
                    None
                }
            })
            .is_ok()
    }

    /// Events fired at `site` so far.
    #[must_use]
    pub fn fired(&self, site: ChaosSite) -> u64 {
        self.fired[site.index()].load(Ordering::Relaxed)
    }

    /// Draws made at `site` so far.
    #[must_use]
    pub fn draws(&self, site: ChaosSite) -> u64 {
        self.draws[site.index()].load(Ordering::Relaxed)
    }

    /// The configured injection latency.
    #[must_use]
    pub fn delay(&self) -> Duration {
        self.config.delay
    }

    /// Sleeps for the configured delay if the delay-class `site` fires.
    pub fn maybe_delay(&self, site: ChaosSite) {
        if self.should(site) {
            std::thread::sleep(self.config.delay);
        }
    }

    /// Panics (with a recognizable payload) if the panic-class `site`
    /// fires. Callers must sit under a `catch_unwind` boundary — the
    /// worker pool and the serve watchdog both do.
    pub fn maybe_panic(&self, site: ChaosSite) {
        if self.should(site) {
            panic!("chaos: injected {} fault", site.name());
        }
    }

    /// The hook the worker pool runs before each job: a possible latency
    /// spike, then a possible injected panic (inside the pool's per-job
    /// `catch_unwind`).
    pub fn pool_job_hook(&self) {
        self.maybe_delay(ChaosSite::PoolDelay);
        self.maybe_panic(ChaosSite::PoolPanic);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_deterministic_per_seed() {
        for seed in [1u64, 7, 0xdead_beef] {
            let config = ChaosConfig::quiet(seed)
                .site(ChaosSite::ExecPanic, SitePolicy::with_probability(0.3));
            let a = Chaos::new(config.clone());
            let b = Chaos::new(config);
            let seq_a: Vec<bool> = (0..256).map(|_| a.should(ChaosSite::ExecPanic)).collect();
            let seq_b: Vec<bool> = (0..256).map(|_| b.should(ChaosSite::ExecPanic)).collect();
            assert_eq!(seq_a, seq_b, "seed {seed}");
            let hits = seq_a.iter().filter(|&&h| h).count();
            assert!((20..=140).contains(&hits), "p=0.3 over 256: {hits}");
        }
    }

    #[test]
    fn different_seeds_give_different_streams() {
        let a = Chaos::new(
            ChaosConfig::quiet(1).site(ChaosSite::TornRead, SitePolicy::with_probability(0.5)),
        );
        let b = Chaos::new(
            ChaosConfig::quiet(2).site(ChaosSite::TornRead, SitePolicy::with_probability(0.5)),
        );
        let seq_a: Vec<bool> = (0..128).map(|_| a.should(ChaosSite::TornRead)).collect();
        let seq_b: Vec<bool> = (0..128).map(|_| b.should(ChaosSite::TornRead)).collect();
        assert_ne!(seq_a, seq_b);
    }

    #[test]
    fn sites_are_decorrelated() {
        let config = ChaosConfig::quiet(9)
            .site(ChaosSite::ReadStall, SitePolicy::with_probability(0.5))
            .site(ChaosSite::WriteEof, SitePolicy::with_probability(0.5));
        let c = Chaos::new(config);
        let seq_a: Vec<bool> = (0..128).map(|_| c.should(ChaosSite::ReadStall)).collect();
        let seq_b: Vec<bool> = (0..128).map(|_| c.should(ChaosSite::WriteEof)).collect();
        assert_ne!(seq_a, seq_b);
    }

    #[test]
    fn limits_cap_total_events() {
        let c = Chaos::new(
            ChaosConfig::quiet(3).site(ChaosSite::ExecPanic, SitePolicy::limited(1.0, 2)),
        );
        let fired: Vec<bool> = (0..10).map(|_| c.should(ChaosSite::ExecPanic)).collect();
        assert_eq!(
            fired,
            [true, true, false, false, false, false, false, false, false, false]
        );
        assert_eq!(c.fired(ChaosSite::ExecPanic), 2);
        assert_eq!(c.draws(ChaosSite::ExecPanic), 10);
    }

    #[test]
    fn off_sites_never_fire() {
        let c = Chaos::new(ChaosConfig::quiet(5));
        assert!((0..64).all(|_| !c.should(ChaosSite::CacheEvict)));
        assert_eq!(c.fired(ChaosSite::CacheEvict), 0);
    }

    #[test]
    fn profile_parsing() {
        let c = ChaosConfig::parse("worker:42").unwrap();
        assert_eq!(c.seed, 42);
        assert!(c.sites[ChaosSite::ExecPanic.index()].probability > 0.0);
        assert_eq!(c.sites[ChaosSite::TornRead.index()], SitePolicy::OFF);
        let c = ChaosConfig::parse("io").unwrap();
        assert_eq!(c.seed, 1);
        assert!(c.sites[ChaosSite::TornRead.index()].probability > 0.0);
        assert!(ChaosConfig::parse("entropy").is_err());
        assert!(ChaosConfig::parse("worker:banana").is_err());
        assert!(ChaosConfig::parse("all:7").is_ok());
        assert!(ChaosConfig::parse("cache").is_ok());
        let c = ChaosConfig::parse("disk:5").unwrap();
        assert_eq!(c.seed, 5);
        assert!(c.sites[ChaosSite::DiskShortWrite.index()].probability > 0.0);
        assert!(c.sites[ChaosSite::DiskBitFlip.index()].probability > 0.0);
        assert_eq!(c.sites[ChaosSite::ExecPanic.index()], SitePolicy::OFF);
    }

    #[test]
    fn all_profile_covers_every_site() {
        let c = ChaosConfig::all_profile(1);
        for site in ChaosSite::ALL {
            assert!(
                c.sites[site.index()].probability > 0.0,
                "site {} missing from the all profile",
                site.name()
            );
        }
    }

    #[test]
    fn maybe_panic_carries_a_recognizable_payload() {
        let c = Chaos::new(
            ChaosConfig::quiet(1).site(ChaosSite::ExecPanic, SitePolicy::limited(1.0, 1)),
        );
        let err = std::panic::catch_unwind(|| c.maybe_panic(ChaosSite::ExecPanic)).unwrap_err();
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("chaos"), "{msg}");
        // Budget exhausted: never panics again.
        c.maybe_panic(ChaosSite::ExecPanic);
    }
}
