//! Typed errors for the simulation crate's fallible entry points.

use std::error::Error;
use std::fmt;

use crate::cancel::Cancelled;

/// Errors returned by the fallible (`try_*`) simulation entry points.
///
/// The infallible entry points ([`crate::estimate`] and friends) are thin
/// wrappers that panic with the same messages; the `try_*` variants return
/// these values so callers (the CLI, servers, batch drivers) can degrade
/// gracefully instead of aborting.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum SimError {
    /// A pattern budget of zero was requested; every estimate would be a
    /// `0/0` division.
    ZeroPatternBudget,
    /// The per-node ε slice does not cover the circuit.
    EpsLengthMismatch {
        /// Nodes in the circuit.
        expected: usize,
        /// Entries supplied.
        actual: usize,
    },
    /// A per-node ε is non-finite or outside `[0, 1]`.
    InvalidEpsilon {
        /// Node index of the offending entry.
        index: usize,
        /// The offending value.
        value: f64,
    },
    /// A tracked joint output pair references a nonexistent output.
    JointPairOutOfRange {
        /// First output index of the pair.
        a: usize,
        /// Second output index of the pair.
        b: usize,
        /// Number of primary outputs in the circuit.
        outputs: usize,
    },
    /// The per-input bias vector does not cover the circuit's inputs.
    InputProbsMismatch {
        /// Inputs in the circuit.
        expected: usize,
        /// Biases supplied.
        actual: usize,
    },
    /// An unsupported SIMD lane width was requested from the tape executor.
    InvalidLaneWidth {
        /// The requested number of `u64` lanes.
        lanes: usize,
    },
    /// An output index passed to a result accessor is out of range.
    OutputIndexOutOfRange {
        /// The requested output index.
        index: usize,
        /// Number of outputs covered by the result.
        outputs: usize,
    },
    /// The run's [`crate::CancelToken`] fired (deadline or explicit
    /// cancel) before the work completed; no partial result escapes.
    Cancelled(Cancelled),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::ZeroPatternBudget => {
                write!(f, "pattern budget is zero (every estimate would be 0/0)")
            }
            SimError::EpsLengthMismatch { expected, actual } => write!(
                f,
                "need one ε per node (got {actual}, circuit has {expected})"
            ),
            SimError::InvalidEpsilon { index, value } => {
                write!(f, "ε[{index}] = {value} out of [0,1]")
            }
            SimError::JointPairOutOfRange { a, b, outputs } => write!(
                f,
                "joint pair out of range: ({a},{b}) with {outputs} outputs"
            ),
            SimError::InputProbsMismatch { expected, actual } => write!(
                f,
                "one bias per input (got {actual}, circuit has {expected})"
            ),
            SimError::InvalidLaneWidth { lanes } => {
                write!(f, "unsupported lane width {lanes} (expected 1, 2, 4, or 8)")
            }
            SimError::OutputIndexOutOfRange { index, outputs } => write!(
                f,
                "output index {index} out of range ({outputs} outputs covered)"
            ),
            SimError::Cancelled(c) => write!(f, "{c}"),
        }
    }
}

impl Error for SimError {}

impl From<Cancelled> for SimError {
    fn from(c: Cancelled) -> Self {
        SimError::Cancelled(c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_specific() {
        let e = SimError::EpsLengthMismatch {
            expected: 4,
            actual: 2,
        };
        assert_eq!(e.to_string(), "need one ε per node (got 2, circuit has 4)");
        assert!(SimError::ZeroPatternBudget.to_string().contains("zero"));
        let e = SimError::InvalidEpsilon {
            index: 3,
            value: f64::NAN,
        };
        assert!(e.to_string().contains("out of [0,1]"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SimError>();
    }
}
