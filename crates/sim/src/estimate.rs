//! Simulation-based estimation backends: signal probabilities, joint
//! fanin-combination counts (weight vectors), and fault-simulation
//! observabilities.
//!
//! These provide the same quantities as the BDD backend in `relogic-bdd`
//! but scale to circuits whose BDDs blow up, at the cost of sampling noise
//! `O(1/√patterns)`.

use crate::packed::PackedSim;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use relogic_netlist::{Circuit, NodeId};

/// Estimates the fault-free signal probability `Pr(node = 1)` of every node
/// from `patterns` uniform random input patterns.
///
/// # Examples
///
/// ```
/// use relogic_netlist::Circuit;
/// use relogic_sim::signal_probabilities;
///
/// let mut c = Circuit::new("t");
/// let a = c.add_input("a");
/// let b = c.add_input("b");
/// let g = c.and([a, b]);
/// c.add_output("y", g);
/// let p = signal_probabilities(&c, 1 << 16, 7);
/// assert!((p[g.index()] - 0.25).abs() < 0.01);
/// ```
#[must_use]
pub fn signal_probabilities(circuit: &Circuit, patterns: u64, seed: u64) -> Vec<f64> {
    signal_probabilities_biased(
        circuit,
        &crate::InputSampler::uniform(circuit.input_count()),
        patterns,
        seed,
    )
}

/// Like [`signal_probabilities`] but under independent per-input biases.
#[must_use]
pub fn signal_probabilities_biased(
    circuit: &Circuit,
    sampler: &crate::InputSampler,
    patterns: u64,
    seed: u64,
) -> Vec<f64> {
    let blocks = patterns.div_ceil(64).max(1);
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut sim = PackedSim::new(circuit);
    let mut ones = vec![0u64; circuit.len()];
    for _ in 0..blocks {
        sampler.fill(&mut sim, &mut rng);
        sim.propagate(circuit);
        for (count, &w) in ones.iter_mut().zip(sim.words()) {
            *count += u64::from(w.count_ones());
        }
    }
    #[allow(clippy::cast_precision_loss)]
    let total = (blocks * 64) as f64;
    #[allow(clippy::cast_precision_loss)]
    ones.iter().map(|&c| c as f64 / total).collect()
}

/// Joint fanin-combination counts for every gate: entry `[i][combo]` is the
/// number of sampled patterns on which gate `i`'s fanins took the values
/// encoded by `combo` (bit `j` of `combo` = value of fanin `j`).
///
/// Sources (inputs/constants) get an empty vector. These counts, normalized,
/// are the paper's *weight vectors* — the core quantity of the single-pass
/// algorithm — estimated by random pattern simulation as §4(i) suggests.
///
/// # Panics
///
/// Panics if any gate has more than `MAX_COUNTED_ARITY` fanins.
#[must_use]
pub fn joint_input_counts(circuit: &Circuit, patterns: u64, seed: u64) -> Vec<Vec<u64>> {
    joint_input_counts_biased(
        circuit,
        &crate::InputSampler::uniform(circuit.input_count()),
        patterns,
        seed,
    )
}

/// Like [`joint_input_counts`] but under independent per-input biases.
///
/// # Panics
///
/// Panics under the same conditions as [`joint_input_counts`].
#[must_use]
pub fn joint_input_counts_biased(
    circuit: &Circuit,
    sampler: &crate::InputSampler,
    patterns: u64,
    seed: u64,
) -> Vec<Vec<u64>> {
    let blocks = patterns.div_ceil(64).max(1);
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut sim = PackedSim::new(circuit);
    let mut counts: Vec<Vec<u64>> = circuit
        .iter()
        .map(|(_, n)| {
            if n.kind().is_gate() {
                assert!(
                    n.arity() <= MAX_COUNTED_ARITY,
                    "gate arity {} exceeds weight-vector limit {MAX_COUNTED_ARITY}",
                    n.arity()
                );
                vec![0u64; 1 << n.arity()]
            } else {
                Vec::new()
            }
        })
        .collect();
    let mut fanin_words: Vec<u64> = Vec::with_capacity(MAX_COUNTED_ARITY);
    for _ in 0..blocks {
        sampler.fill(&mut sim, &mut rng);
        sim.propagate(circuit);
        for (id, node) in circuit.iter() {
            if !node.kind().is_gate() {
                continue;
            }
            fanin_words.clear();
            fanin_words.extend(node.fanins().iter().map(|f| sim.words()[f.index()]));
            let slot = &mut counts[id.index()];
            if fanin_words.len() <= 4 {
                // Bit-sliced: one AND-chain per combination.
                for (combo, c) in slot.iter_mut().enumerate() {
                    let mut w = u64::MAX;
                    for (j, &fw) in fanin_words.iter().enumerate() {
                        w &= if combo >> j & 1 == 1 { fw } else { !fw };
                    }
                    *c += u64::from(w.count_ones());
                }
            } else {
                // Lane-gather for wide gates.
                for lane in 0..64 {
                    let mut combo = 0usize;
                    for (j, &fw) in fanin_words.iter().enumerate() {
                        combo |= (((fw >> lane) & 1) as usize) << j;
                    }
                    slot[combo] += 1;
                }
            }
        }
    }
    counts
}

/// Maximum gate arity supported by weight-vector estimation (the weight
/// vector has `2^arity` entries).
pub const MAX_COUNTED_ARITY: usize = 12;

/// Per-gate, per-output observability estimates from fault simulation.
#[derive(Clone, Debug)]
pub struct ObservabilityEstimate {
    per_output: Vec<Vec<f64>>, // [node][output]
    any_output: Vec<f64>,
}

impl ObservabilityEstimate {
    /// Observability of `node` at output `output_index`: the probability a
    /// flip at the node changes that output.
    #[must_use]
    pub fn at_output(&self, node: NodeId, output_index: usize) -> f64 {
        self.per_output[node.index()][output_index]
    }

    /// Observability of `node` at *any* output.
    #[must_use]
    pub fn any(&self, node: NodeId) -> f64 {
        self.any_output[node.index()]
    }

    /// Number of nodes covered.
    #[must_use]
    pub fn len(&self) -> usize {
        self.any_output.len()
    }

    /// Returns `true` if no nodes are covered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.any_output.is_empty()
    }
}

/// Estimates the noiseless observability of every node at every output by
/// parallel-pattern fault simulation: for each sampled block, each node is
/// flipped in turn and only its fanout cone is re-simulated.
///
/// Cost is `O(patterns/64 · Σ_i |cone(i)|)`; intended for circuits up to a
/// few thousand gates (the exact BDD backend in `relogic` is preferable for
/// small, reconvergence-heavy circuits).
#[must_use]
pub fn observabilities(circuit: &Circuit, patterns: u64, seed: u64) -> ObservabilityEstimate {
    observabilities_biased(
        circuit,
        &crate::InputSampler::uniform(circuit.input_count()),
        patterns,
        seed,
    )
}

/// Like [`observabilities`] but under independent per-input biases.
#[must_use]
pub fn observabilities_biased(
    circuit: &Circuit,
    sampler: &crate::InputSampler,
    patterns: u64,
    seed: u64,
) -> ObservabilityEstimate {
    let n = circuit.len();
    let outputs: Vec<usize> = circuit.outputs().iter().map(|o| o.node().index()).collect();
    let blocks = patterns.div_ceil(64).max(1);
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut clean = PackedSim::new(circuit);

    // Precompute, for each node, the list of gates in its transitive fanout
    // (in topological order) — the nodes to re-simulate per fault.
    let mut in_cone = vec![false; n];
    let mut cones: Vec<Vec<NodeId>> = vec![Vec::new(); n];
    for target in (0..n).map(NodeId::from_index) {
        in_cone.iter_mut().for_each(|b| *b = false);
        in_cone[target.index()] = true;
        let mut cone = Vec::new();
        for (id, node) in circuit.iter().skip(target.index() + 1) {
            if node.kind().is_gate() && node.fanins().iter().any(|f| in_cone[f.index()]) {
                in_cone[id.index()] = true;
                cone.push(id);
            }
        }
        cones[target.index()] = cone;
    }

    let mut counts: Vec<Vec<u64>> = vec![vec![0u64; outputs.len()]; n];
    let mut any_counts = vec![0u64; n];
    let mut faulty: Vec<u64> = vec![0; n];
    let mut fanin_words: Vec<u64> = Vec::with_capacity(8);

    for _ in 0..blocks {
        sampler.fill(&mut clean, &mut rng);
        clean.propagate(circuit);
        for target in 0..n {
            faulty.copy_from_slice(clean.words());
            faulty[target] = !faulty[target];
            for &id in &cones[target] {
                let node = circuit.node(id);
                fanin_words.clear();
                fanin_words.extend(node.fanins().iter().map(|f| faulty[f.index()]));
                faulty[id.index()] = node.kind().eval_word(&fanin_words);
            }
            let mut any = 0u64;
            for (k, &oidx) in outputs.iter().enumerate() {
                let diff = clean.words()[oidx] ^ faulty[oidx];
                counts[target][k] += u64::from(diff.count_ones());
                any |= diff;
            }
            any_counts[target] += u64::from(any.count_ones());
        }
    }

    #[allow(clippy::cast_precision_loss)]
    let total = (blocks * 64) as f64;
    #[allow(clippy::cast_precision_loss)]
    let per_output = counts
        .into_iter()
        .map(|row| row.into_iter().map(|c| c as f64 / total).collect())
        .collect();
    #[allow(clippy::cast_precision_loss)]
    let any_output = any_counts.into_iter().map(|c| c as f64 / total).collect();
    ObservabilityEstimate {
        per_output,
        any_output,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn signal_probabilities_of_basic_gates() {
        let mut c = Circuit::new("t");
        let a = c.add_input("a");
        let b = c.add_input("b");
        let and = c.and([a, b]);
        let or = c.or([a, b]);
        let xor = c.xor([a, b]);
        c.add_output("y", xor);
        let p = signal_probabilities(&c, 1 << 16, 42);
        assert!((p[a.index()] - 0.5).abs() < 0.01);
        assert!((p[and.index()] - 0.25).abs() < 0.01);
        assert!((p[or.index()] - 0.75).abs() < 0.01);
        assert!((p[xor.index()] - 0.5).abs() < 0.01);
    }

    #[test]
    fn joint_counts_sum_to_patterns_and_match_marginals() {
        let mut c = Circuit::new("t");
        let a = c.add_input("a");
        let b = c.add_input("b");
        let g = c.and([a, b]);
        c.add_output("y", g);
        let patterns = 1u64 << 14;
        let counts = joint_input_counts(&c, patterns, 3);
        let w = &counts[g.index()];
        assert_eq!(w.len(), 4);
        let total: u64 = w.iter().sum();
        assert_eq!(total, patterns);
        // independent uniform inputs: each combo ~ 1/4
        for &cnt in w {
            #[allow(clippy::cast_precision_loss)]
            let frac = cnt as f64 / patterns as f64;
            assert!((frac - 0.25).abs() < 0.02, "{frac}");
        }
    }

    #[test]
    fn joint_counts_capture_correlation() {
        // Both fanins of g are the same signal: only combos 00 and 11 occur.
        let mut c = Circuit::new("t");
        let a = c.add_input("a");
        let g = c.xor([a, a]);
        c.add_output("y", g);
        let counts = joint_input_counts(&c, 4096, 9);
        let w = &counts[g.index()];
        assert_eq!(w[0b01], 0);
        assert_eq!(w[0b10], 0);
        assert!(w[0b00] > 0 && w[0b11] > 0);
    }

    #[test]
    fn wide_gate_uses_lane_gather() {
        let mut c = Circuit::new("t");
        let ins: Vec<_> = (0..6).map(|i| c.add_input(format!("x{i}"))).collect();
        let g = c.and(ins);
        c.add_output("y", g);
        let counts = joint_input_counts(&c, 4096, 1);
        let w = &counts[g.index()];
        assert_eq!(w.len(), 64);
        assert_eq!(w.iter().sum::<u64>(), 4096);
    }

    #[test]
    fn observability_of_and_gate_cone() {
        // y = (a & b) | c: obs(AND) = Pr(c = 0) = 1/2; obs(c-input) = Pr(a&b = 0) = 3/4.
        let mut c = Circuit::new("t");
        let a = c.add_input("a");
        let b = c.add_input("b");
        let x = c.add_input("c");
        let g = c.and([a, b]);
        let y = c.or([g, x]);
        c.add_output("y", y);
        let obs = observabilities(&c, 1 << 15, 5);
        assert!((obs.at_output(g, 0) - 0.5).abs() < 0.02);
        assert!((obs.at_output(x, 0) - 0.75).abs() < 0.02);
        assert!((obs.at_output(y, 0) - 1.0).abs() < 1e-12);
        assert!((obs.any(g) - 0.5).abs() < 0.02);
        assert_eq!(obs.len(), c.len());
    }

    #[test]
    fn observability_splits_across_outputs() {
        // g feeds y1 directly and y2 through an AND with b.
        let mut c = Circuit::new("t");
        let a = c.add_input("a");
        let b = c.add_input("b");
        let g = c.not(a);
        let y2 = c.and([g, b]);
        c.add_output("y1", g);
        c.add_output("y2", y2);
        let obs = observabilities(&c, 1 << 15, 8);
        assert!((obs.at_output(g, 0) - 1.0).abs() < 1e-12);
        assert!((obs.at_output(g, 1) - 0.5).abs() < 0.02);
        // any-output observability is 1 (always visible at y1)
        assert!((obs.any(g) - 1.0).abs() < 1e-12);
    }
}
