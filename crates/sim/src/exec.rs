//! Deterministic chunked fan-out executor.
//!
//! Both embarrassingly parallel workloads in this suite — Monte Carlo fault
//! injection over pattern blocks and δ(ε⃗) sweeps over grid points — reduce
//! to the same shape: *N independent chunks of work, each identified by its
//! index, whose results must be merged in index order*. [`ChunkExecutor`]
//! implements exactly that shape on `std::thread::scope` (no external
//! thread-pool dependency, per the workspace's offline dependency policy):
//!
//! * Work is handed out dynamically through an atomic cursor, so uneven
//!   chunk costs load-balance across workers.
//! * Every result is tagged with its chunk index and the merged `Vec` is
//!   reassembled in index order, so the output is **independent of thread
//!   count and scheduling** — callers that also make each chunk's *content*
//!   independent of scheduling (e.g. by deriving per-chunk RNG streams from
//!   the chunk index, see [`crate::parallel`]) get bit-identical results
//!   for any `threads` value.
//! * Workers can keep per-thread scratch state (simulator buffers) via
//!   [`ChunkExecutor::map_chunks_with`], amortizing allocations across all
//!   chunks a worker processes.

use std::collections::VecDeque;
use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use crate::cancel::{CancelToken, Cancelled};

/// Number of hardware threads available to this process (at least 1).
#[must_use]
pub fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// A fixed-width deterministic executor over indexed chunks.
///
/// # Examples
///
/// ```
/// use relogic_sim::exec::ChunkExecutor;
///
/// let exec = ChunkExecutor::new(4);
/// let squares = exec.map_chunks(8, |i| i * i);
/// assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
/// ```
#[derive(Clone, Copy, Debug)]
pub struct ChunkExecutor {
    threads: usize,
}

impl ChunkExecutor {
    /// Creates an executor running on `threads` worker threads;
    /// `0` auto-detects [`available_threads`].
    #[must_use]
    pub fn new(threads: usize) -> Self {
        ChunkExecutor {
            threads: if threads == 0 {
                available_threads()
            } else {
                threads
            },
        }
    }

    /// The resolved worker-thread count.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Maps `work` over chunk indices `0..chunks`, returning results in
    /// index order regardless of which worker processed which chunk.
    pub fn map_chunks<T, F>(&self, chunks: usize, work: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        self.map_chunks_with(chunks, || (), |(), i| work(i))
    }

    /// Like [`ChunkExecutor::map_chunks`], but each worker thread first
    /// builds scratch state with `init` and reuses it for every chunk it
    /// processes — the hook the Monte Carlo engine uses to allocate its
    /// simulator buffers once per worker rather than once per chunk.
    ///
    /// # Panics
    ///
    /// Propagates a panic from any worker thread.
    pub fn map_chunks_with<S, T, I, F>(&self, chunks: usize, init: I, work: F) -> Vec<T>
    where
        T: Send,
        S: Send,
        I: Fn() -> S + Sync,
        F: Fn(&mut S, usize) -> T + Sync,
    {
        self.map_chunks_with_state(chunks, init, work).0
    }

    /// Like [`ChunkExecutor::map_chunks_with`], but also returns the final
    /// scratch state of every worker that ran (in no particular order).
    ///
    /// This is the hook for workloads whose per-worker state accumulates
    /// reportable information — the BDD-backed observability engine keeps a
    /// whole decision-diagram manager per worker and merges the managers'
    /// statistics after the fan-out.
    ///
    /// # Panics
    ///
    /// Propagates a panic from any worker thread.
    pub fn map_chunks_with_state<S, T, I, F>(
        &self,
        chunks: usize,
        init: I,
        work: F,
    ) -> (Vec<T>, Vec<S>)
    where
        T: Send,
        S: Send,
        I: Fn() -> S + Sync,
        F: Fn(&mut S, usize) -> T + Sync,
    {
        let never = CancelToken::new();
        match self.try_map_chunks_with_state(chunks, &never, "exec_chunk", init, |scratch, i| {
            Ok(work(scratch, i))
        }) {
            Ok(out) => out,
            Err(_) => unreachable!("a fresh token never fires"),
        }
    }

    /// The cancellable core behind every `map_chunks*` variant.
    ///
    /// Workers poll `cancel` before claiming each chunk and stop claiming
    /// once it fires; a chunk's `work` may also notice cancellation itself
    /// mid-chunk and return `Err`. The call returns `Ok` **iff every chunk
    /// completed** — a token that fires after the last chunk was already
    /// claimed and finished does not retract the answer, so a run that
    /// completes under its deadline is bit-identical to an undeadlined run
    /// (the checks are read-only early-exits; no arithmetic changes).
    ///
    /// `site` labels the executor's own hand-out check in the returned
    /// [`Cancelled`]; an error returned by `work` (with its own, more
    /// precise site) takes precedence, lowest chunk index first.
    ///
    /// # Errors
    ///
    /// [`Cancelled`] when the token fired before all chunks completed. No
    /// partial results escape.
    ///
    /// # Panics
    ///
    /// Propagates a panic from any worker thread.
    pub fn try_map_chunks_with_state<S, T, I, F>(
        &self,
        chunks: usize,
        cancel: &CancelToken,
        site: &'static str,
        init: I,
        work: F,
    ) -> Result<(Vec<T>, Vec<S>), Cancelled>
    where
        T: Send,
        S: Send,
        I: Fn() -> S + Sync,
        F: Fn(&mut S, usize) -> Result<T, Cancelled> + Sync,
    {
        if self.threads <= 1 || chunks <= 1 {
            let mut scratch = init();
            let mut results = Vec::with_capacity(chunks);
            for i in 0..chunks {
                cancel.check(site)?;
                results.push(work(&mut scratch, i)?);
            }
            return Ok((results, vec![scratch]));
        }

        let workers = self.threads.min(chunks);
        let cursor = AtomicUsize::new(0);
        // Set once any worker sees a fired token or a work error; the other
        // workers stop claiming chunks at their next hand-out check.
        let aborted = AtomicBool::new(false);
        // First work-reported error, by lowest chunk index (deterministic
        // pick when several workers trip in the same window).
        let first_err: Mutex<Option<(usize, Cancelled)>> = Mutex::new(None);
        let (mut tagged, states): (Vec<(usize, T)>, Vec<S>) = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| {
                        let mut scratch = init();
                        let mut produced = Vec::new();
                        loop {
                            if aborted.load(Ordering::Relaxed) || cancel.is_cancelled() {
                                aborted.store(true, Ordering::Relaxed);
                                break;
                            }
                            let i = cursor.fetch_add(1, Ordering::Relaxed);
                            if i >= chunks {
                                break;
                            }
                            match work(&mut scratch, i) {
                                Ok(t) => produced.push((i, t)),
                                Err(e) => {
                                    aborted.store(true, Ordering::Relaxed);
                                    let mut slot = match first_err.lock() {
                                        Ok(g) => g,
                                        Err(poisoned) => poisoned.into_inner(),
                                    };
                                    if slot.is_none_or(|(j, _)| i < j) {
                                        *slot = Some((i, e));
                                    }
                                    break;
                                }
                            }
                        }
                        (produced, scratch)
                    })
                })
                .collect();
            let mut tagged = Vec::with_capacity(chunks);
            let mut states = Vec::with_capacity(workers);
            for h in handles {
                match h.join() {
                    Ok((produced, scratch)) => {
                        tagged.extend(produced);
                        states.push(scratch);
                    }
                    // Re-raise the worker's panic payload on the caller's
                    // thread instead of aborting with a generic message.
                    Err(payload) => std::panic::resume_unwind(payload),
                }
            }
            (tagged, states)
        });
        // All chunks completed: the answer stands even if the token fired
        // while the last chunks were in flight (completed under the wire).
        if tagged.len() == chunks {
            tagged.sort_unstable_by_key(|&(i, _)| i);
            return Ok((tagged.into_iter().map(|(_, t)| t).collect(), states));
        }
        let work_err = match first_err.lock() {
            Ok(g) => *g,
            Err(poisoned) => *poisoned.into_inner(),
        };
        Err(match work_err {
            Some((_, e)) => e,
            None => Cancelled {
                after: cancel.elapsed(),
                checked_at: site,
            },
        })
    }
}

/// Error returned by [`WorkerPool::submit`] once the pool has begun
/// shutting down: the job was not (and will never be) executed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PoolClosed;

impl std::fmt::Display for PoolClosed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "worker pool is shutting down; job rejected")
    }
}

impl std::error::Error for PoolClosed {}

/// Why a non-blocking submission was rejected.
///
/// Returned by the [`WorkerPool::try_submit`] / [`WorkerPool::submit_timeout`]
/// family. In every rejection case the job is **dropped unexecuted** — its
/// destructor runs on the submitting thread, which callers can exploit to
/// attach cleanup (e.g. `relogic-serve` answers a rejected connection with an
/// `overloaded` farewell from the job's drop guard).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SubmitRejection {
    /// The pool has begun shutting down; it will never accept the job.
    Closed,
    /// The queue stayed at capacity for the allowed wait (zero for
    /// `try_submit`); the pool is overloaded or wedged.
    Full,
}

impl std::fmt::Display for SubmitRejection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitRejection::Closed => write!(f, "worker pool is shutting down; job rejected"),
            SubmitRejection::Full => write!(f, "worker pool queue is full; job rejected"),
        }
    }
}

impl std::error::Error for SubmitRejection {}

/// A boxed job as consumed by [`WorkerPool`] workers.
pub type Job = Box<dyn FnOnce() + Send>;

struct PoolState {
    queue: VecDeque<Job>,
    open: bool,
}

struct PoolShared {
    state: Mutex<PoolState>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: usize,
    #[cfg(any(test, feature = "chaos"))]
    chaos: std::sync::OnceLock<Arc<crate::chaos::Chaos>>,
}

/// How long a submission may wait for queue space.
#[derive(Clone, Copy)]
enum Wait {
    /// Fail immediately if the queue is at capacity.
    None,
    /// Block until space frees up or the pool closes.
    Forever,
    /// Block until the deadline, then fail with [`SubmitRejection::Full`].
    Until(Instant),
}

impl PoolShared {
    /// Locks the pool state, recovering from a poisoned mutex (a panicking
    /// job must not wedge every other connection).
    fn lock(&self) -> MutexGuard<'_, PoolState> {
        match self.state.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Single enqueue path behind every submit variant. On `Err` the job
    /// has been dropped (running its destructor on the calling thread).
    fn push(&self, job: Job, wait: Wait) -> Result<(), SubmitRejection> {
        let mut state = self.lock();
        loop {
            if !state.open {
                return Err(SubmitRejection::Closed);
            }
            if state.queue.len() < self.capacity {
                state.queue.push_back(job);
                drop(state);
                self.not_empty.notify_one();
                return Ok(());
            }
            match wait {
                Wait::None => return Err(SubmitRejection::Full),
                Wait::Forever => {
                    state = match self.not_full.wait(state) {
                        Ok(g) => g,
                        Err(poisoned) => poisoned.into_inner(),
                    };
                }
                Wait::Until(deadline) => {
                    let now = Instant::now();
                    if now >= deadline {
                        return Err(SubmitRejection::Full);
                    }
                    state = match self.not_full.wait_timeout(state, deadline - now) {
                        Ok((g, _)) => g,
                        Err(poisoned) => poisoned.into_inner().0,
                    };
                }
            }
        }
    }
}

/// A long-lived pool of worker threads consuming a **bounded** job queue.
///
/// [`ChunkExecutor`] covers the *batch* shape (N indexed chunks, merged in
/// order, workers die at the end); `WorkerPool` covers the *service* shape
/// layered above it: jobs arrive continuously (one per client connection in
/// `relogic-serve`), each job may itself fan out through a `ChunkExecutor`,
/// and the pool outlives every job. The queue bound is the backpressure
/// mechanism — [`WorkerPool::submit`] blocks while the queue is full, so an
/// accept loop naturally stops pulling work off the listener when the
/// workers are saturated.
///
/// # Examples
///
/// ```
/// use relogic_sim::exec::WorkerPool;
/// use std::sync::atomic::{AtomicUsize, Ordering};
/// use std::sync::Arc;
///
/// let pool = WorkerPool::new(2, 8);
/// let done = Arc::new(AtomicUsize::new(0));
/// for _ in 0..5 {
///     let done = Arc::clone(&done);
///     pool.submit(move || {
///         done.fetch_add(1, Ordering::SeqCst);
///     })
///     .unwrap();
/// }
/// pool.shutdown(); // drains the queue, then joins the workers
/// assert_eq!(done.load(Ordering::SeqCst), 5);
/// ```
pub struct WorkerPool {
    shared: Arc<PoolShared>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl WorkerPool {
    /// Creates a pool with `threads` workers (`0` auto-detects
    /// [`available_threads`]) and a job queue bounded at `queue_capacity`
    /// pending jobs (at least 1).
    #[must_use]
    pub fn new(threads: usize, queue_capacity: usize) -> Self {
        let threads = if threads == 0 {
            available_threads()
        } else {
            threads
        };
        let shared = Arc::new(PoolShared {
            state: Mutex::new(PoolState {
                queue: VecDeque::new(),
                open: true,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity: queue_capacity.max(1),
            #[cfg(any(test, feature = "chaos"))]
            chaos: std::sync::OnceLock::new(),
        });
        let workers = (0..threads)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        WorkerPool { shared, workers }
    }

    /// The number of worker threads.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// Jobs currently queued (not yet picked up by a worker).
    #[must_use]
    pub fn queued(&self) -> usize {
        self.shared.lock().queue.len()
    }

    /// Enqueues a job, blocking while the queue is at capacity
    /// (backpressure).
    ///
    /// # Errors
    ///
    /// Returns [`PoolClosed`] if [`WorkerPool::shutdown`] has begun; the
    /// job is dropped unexecuted.
    pub fn submit<F>(&self, job: F) -> Result<(), PoolClosed>
    where
        F: FnOnce() + Send + 'static,
    {
        self.shared
            .push(Box::new(job), Wait::Forever)
            .map_err(|_| PoolClosed)
    }

    /// Enqueues a job without blocking.
    ///
    /// # Errors
    ///
    /// [`SubmitRejection::Full`] if the queue is at capacity right now, or
    /// [`SubmitRejection::Closed`] if shutdown has begun. Either way the
    /// job is dropped unexecuted (its destructor runs here).
    pub fn try_submit<F>(&self, job: F) -> Result<(), SubmitRejection>
    where
        F: FnOnce() + Send + 'static,
    {
        self.shared.push(Box::new(job), Wait::None)
    }

    /// Enqueues a job, blocking at most `timeout` for queue space — the
    /// bounded-patience middle ground between [`WorkerPool::submit`]
    /// (which can wedge the caller behind a stuck pool) and
    /// [`WorkerPool::try_submit`].
    ///
    /// # Errors
    ///
    /// [`SubmitRejection::Full`] if no space freed up within `timeout`, or
    /// [`SubmitRejection::Closed`] if shutdown began while waiting. Either
    /// way the job is dropped unexecuted (its destructor runs here).
    pub fn submit_timeout<F>(&self, job: F, timeout: Duration) -> Result<(), SubmitRejection>
    where
        F: FnOnce() + Send + 'static,
    {
        self.shared
            .push(Box::new(job), Wait::Until(Instant::now() + timeout))
    }

    /// Installs a fault injector: every job the pool subsequently runs is
    /// preceded by [`crate::chaos::Chaos::pool_job_hook`] (a possible
    /// latency spike and/or injected panic, confined by the pool's per-job
    /// `catch_unwind`). The first installation wins; later calls are
    /// ignored.
    #[cfg(any(test, feature = "chaos"))]
    pub fn install_chaos(&self, chaos: Arc<crate::chaos::Chaos>) {
        let _ = self.shared.chaos.set(chaos);
    }

    /// A cloneable submit handle that can outlive borrows of the pool
    /// (e.g. held by accept threads while the owner retains the pool for
    /// shutdown). Submitting through the handle behaves exactly like
    /// [`WorkerPool::submit`].
    #[must_use]
    pub fn submitter(&self) -> PoolSubmitter {
        PoolSubmitter {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Drains and joins the pool: no new jobs are accepted, every job
    /// already queued still runs, and the call returns once all workers
    /// have exited. A worker that panicked is ignored (its panic was
    /// confined to its own job).
    pub fn shutdown(self) {
        {
            let mut state = self.shared.lock();
            state.open = false;
        }
        self.shared.not_empty.notify_all();
        self.shared.not_full.notify_all();
        for w in self.workers {
            let _ = w.join();
        }
    }
}

/// A detached, cloneable handle for submitting jobs to a [`WorkerPool`].
#[derive(Clone)]
pub struct PoolSubmitter {
    shared: Arc<PoolShared>,
}

impl PoolSubmitter {
    /// Enqueues an already-boxed job, blocking while the queue is full.
    ///
    /// # Errors
    ///
    /// Returns [`PoolClosed`] if the pool has begun shutting down.
    pub fn submit_boxed(&self, job: Job) -> Result<(), PoolClosed> {
        self.shared.push(job, Wait::Forever).map_err(|_| PoolClosed)
    }

    /// Enqueues an already-boxed job without blocking; see
    /// [`WorkerPool::try_submit`] for the rejection contract.
    ///
    /// # Errors
    ///
    /// [`SubmitRejection`] on a full queue or a closed pool; the job is
    /// dropped unexecuted either way.
    pub fn try_submit_boxed(&self, job: Job) -> Result<(), SubmitRejection> {
        self.shared.push(job, Wait::None)
    }

    /// Enqueues an already-boxed job, blocking at most `timeout`; see
    /// [`WorkerPool::submit_timeout`] for the rejection contract.
    ///
    /// # Errors
    ///
    /// [`SubmitRejection`] if no space freed up in time or the pool
    /// closed; the job is dropped unexecuted either way.
    pub fn submit_timeout_boxed(&self, job: Job, timeout: Duration) -> Result<(), SubmitRejection> {
        self.shared.push(job, Wait::Until(Instant::now() + timeout))
    }

    /// Jobs currently queued (not yet picked up by a worker).
    #[must_use]
    pub fn queued(&self) -> usize {
        self.shared.lock().queue.len()
    }
}

fn worker_loop(shared: &PoolShared) {
    let mut state = shared.lock();
    loop {
        if let Some(job) = state.queue.pop_front() {
            drop(state);
            shared.not_full.notify_one();
            // A panicking job must not kill the worker: the pool serves
            // many independent clients and its width is part of the
            // service's capacity contract. An installed fault injector runs
            // inside the same boundary so injected panics stay confined.
            let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                #[cfg(any(test, feature = "chaos"))]
                if let Some(chaos) = shared.chaos.get() {
                    chaos.pool_job_hook();
                }
                job();
            }));
            state = shared.lock();
        } else if state.open {
            state = match shared.not_empty.wait(state) {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
        } else {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_index_order() {
        for threads in [1, 2, 3, 8] {
            let exec = ChunkExecutor::new(threads);
            let out = exec.map_chunks(37, |i| i * 3);
            assert_eq!(out, (0..37).map(|i| i * 3).collect::<Vec<_>>());
        }
    }

    #[test]
    fn zero_threads_auto_detects() {
        let exec = ChunkExecutor::new(0);
        assert!(exec.threads() >= 1);
        assert_eq!(exec.map_chunks(3, |i| i), vec![0, 1, 2]);
    }

    #[test]
    fn empty_chunk_count_yields_empty_result() {
        let exec = ChunkExecutor::new(4);
        assert_eq!(exec.map_chunks(0, |i| i), Vec::<usize>::new());
    }

    #[test]
    fn scratch_state_is_reused_within_a_worker() {
        let exec = ChunkExecutor::new(2);
        // Each worker counts how many chunks it has processed in its own
        // scratch; the per-chunk snapshots must therefore be positive and
        // their per-worker maxima must sum to the chunk count.
        let counts = exec.map_chunks_with(
            24,
            || 0usize,
            |seen, _i| {
                *seen += 1;
                *seen
            },
        );
        assert_eq!(counts.len(), 24);
        assert!(counts.iter().all(|&c| c >= 1));
    }

    #[test]
    fn final_worker_states_cover_every_chunk() {
        for threads in [1, 2, 5] {
            let exec = ChunkExecutor::new(threads);
            let (results, states) = exec.map_chunks_with_state(
                20,
                || 0usize,
                |seen: &mut usize, i| {
                    *seen += 1;
                    i * 2
                },
            );
            assert_eq!(results, (0..20).map(|i| i * 2).collect::<Vec<_>>());
            assert!(!states.is_empty() && states.len() <= threads.max(1));
            assert_eq!(states.iter().sum::<usize>(), 20, "threads={threads}");
        }
    }

    #[test]
    fn oversubscription_is_harmless() {
        let exec = ChunkExecutor::new(16);
        let out = exec.map_chunks(4, |i| i + 1);
        assert_eq!(out, vec![1, 2, 3, 4]);
    }

    #[test]
    fn pre_fired_token_yields_cancelled_before_any_chunk_runs() {
        for threads in [1, 4] {
            let exec = ChunkExecutor::new(threads);
            let token = CancelToken::new();
            token.cancel();
            let ran = AtomicUsize::new(0);
            let err = exec
                .try_map_chunks_with_state(
                    16,
                    &token,
                    "test_site",
                    || (),
                    |(), i| {
                        ran.fetch_add(1, Ordering::SeqCst);
                        Ok(i)
                    },
                )
                .unwrap_err();
            assert_eq!(err.checked_at, "test_site");
            assert_eq!(ran.load(Ordering::SeqCst), 0, "threads={threads}");
        }
    }

    #[test]
    fn mid_run_cancel_stops_hand_out_and_returns_no_partial_result() {
        for threads in [1, 4] {
            let exec = ChunkExecutor::new(threads);
            let token = CancelToken::new();
            let fire_at = 5usize;
            let res = exec.try_map_chunks_with_state(
                64,
                &token,
                "hand_out",
                || (),
                |(), i| {
                    if i == fire_at {
                        token.cancel();
                        return Err(Cancelled {
                            after: token.elapsed(),
                            checked_at: "work_inner",
                        });
                    }
                    Ok(i)
                },
            );
            let err = res.unwrap_err();
            assert!(
                err.checked_at == "work_inner" || err.checked_at == "hand_out",
                "threads={threads}: {err:?}"
            );
        }
    }

    #[test]
    fn completed_run_under_token_is_bit_identical_to_uncancelled_run() {
        for threads in [1, 2, 8] {
            let exec = ChunkExecutor::new(threads);
            let plain = exec.map_chunks(33, |i| i * 7 + 1);
            let token = CancelToken::with_deadline(Duration::from_secs(3600));
            let (under_token, _) = exec
                .try_map_chunks_with_state(33, &token, "site", || (), |(), i| Ok(i * 7 + 1))
                .unwrap();
            assert_eq!(plain, under_token, "threads={threads}");
        }
    }

    #[test]
    fn worker_pool_runs_every_submitted_job() {
        use std::sync::atomic::AtomicUsize;
        let pool = WorkerPool::new(3, 4);
        assert_eq!(pool.threads(), 3);
        let done = Arc::new(AtomicUsize::new(0));
        for _ in 0..32 {
            let done = Arc::clone(&done);
            pool.submit(move || {
                done.fetch_add(1, Ordering::SeqCst);
            })
            .unwrap();
        }
        pool.shutdown();
        assert_eq!(done.load(Ordering::SeqCst), 32);
    }

    #[test]
    fn worker_pool_rejects_jobs_after_shutdown_started() {
        use std::sync::atomic::AtomicUsize;
        let pool = WorkerPool::new(1, 1);
        let done = Arc::new(AtomicUsize::new(0));
        {
            let done = Arc::clone(&done);
            pool.submit(move || {
                done.fetch_add(1, Ordering::SeqCst);
            })
            .unwrap();
        }
        // Flip the pool closed from another handle before submitting more.
        let shared = Arc::clone(&pool.shared);
        shared.lock().open = false;
        shared.not_empty.notify_all();
        assert_eq!(pool.submit(|| ()), Err(PoolClosed));
        pool.shutdown();
    }

    #[test]
    fn worker_pool_survives_a_panicking_job() {
        use std::sync::atomic::AtomicUsize;
        let pool = WorkerPool::new(1, 8);
        pool.submit(|| panic!("job panic must stay confined"))
            .unwrap();
        let done = Arc::new(AtomicUsize::new(0));
        {
            let done = Arc::clone(&done);
            pool.submit(move || {
                done.fetch_add(1, Ordering::SeqCst);
            })
            .unwrap();
        }
        pool.shutdown();
        assert_eq!(
            done.load(Ordering::SeqCst),
            1,
            "the worker must outlive a panicking job"
        );
    }

    #[test]
    fn worker_pool_zero_threads_auto_detects() {
        let pool = WorkerPool::new(0, 1);
        assert!(pool.threads() >= 1);
        pool.shutdown();
    }

    /// A pool whose single worker is parked on a barrier-like gate, so the
    /// queue can be filled deterministically.
    fn wedged_pool(capacity: usize) -> (WorkerPool, Arc<(Mutex<bool>, Condvar)>) {
        let pool = WorkerPool::new(1, capacity);
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        {
            let gate = Arc::clone(&gate);
            pool.submit(move || {
                let (lock, cv) = &*gate;
                let mut released = lock.lock().unwrap();
                while !*released {
                    released = cv.wait(released).unwrap();
                }
            })
            .unwrap();
        }
        // Wait until the worker has actually picked the gate job up, so the
        // queue length is exactly what the tests subsequently submit.
        while pool.queued() > 0 {
            std::thread::yield_now();
        }
        (pool, gate)
    }

    fn release(gate: &Arc<(Mutex<bool>, Condvar)>) {
        let (lock, cv) = &**gate;
        *lock.lock().unwrap() = true;
        cv.notify_all();
    }

    #[test]
    fn try_submit_rejects_when_full_and_runs_rejected_jobs_destructor() {
        let (pool, gate) = wedged_pool(1);
        pool.try_submit(|| ()).unwrap(); // fills the queue
        struct DropFlag(Arc<AtomicUsize>);
        impl Drop for DropFlag {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::SeqCst);
            }
        }
        let dropped = Arc::new(AtomicUsize::new(0));
        let flag = DropFlag(Arc::clone(&dropped));
        let rejected = pool.try_submit(move || {
            let _keep = &flag;
        });
        assert_eq!(rejected, Err(SubmitRejection::Full));
        assert_eq!(
            dropped.load(Ordering::SeqCst),
            1,
            "rejected job must be dropped on the submitting thread"
        );
        release(&gate);
        pool.shutdown();
    }

    #[test]
    fn submit_timeout_times_out_on_a_wedged_pool_then_succeeds_after_release() {
        let (pool, gate) = wedged_pool(1);
        pool.try_submit(|| ()).unwrap();
        let t0 = Instant::now();
        let rejected = pool.submit_timeout(|| (), Duration::from_millis(50));
        assert_eq!(rejected, Err(SubmitRejection::Full));
        assert!(
            t0.elapsed() >= Duration::from_millis(40),
            "must actually wait out the timeout"
        );
        release(&gate);
        let done = Arc::new(AtomicUsize::new(0));
        {
            let done = Arc::clone(&done);
            pool.submit_timeout(
                move || {
                    done.fetch_add(1, Ordering::SeqCst);
                },
                Duration::from_secs(10),
            )
            .unwrap();
        }
        pool.shutdown();
        assert_eq!(done.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn submit_variants_report_closed_after_shutdown_started() {
        let pool = WorkerPool::new(1, 2);
        let submitter = pool.submitter();
        pool.shared.lock().open = false;
        pool.shared.not_empty.notify_all();
        assert_eq!(pool.try_submit(|| ()), Err(SubmitRejection::Closed));
        assert_eq!(
            pool.submit_timeout(|| (), Duration::from_millis(10)),
            Err(SubmitRejection::Closed)
        );
        assert_eq!(
            submitter.try_submit_boxed(Box::new(|| ())),
            Err(SubmitRejection::Closed)
        );
        assert_eq!(submitter.queued(), 0);
        pool.shutdown();
    }

    #[test]
    fn pool_chaos_hook_panics_are_confined_and_counted() {
        use crate::chaos::{Chaos, ChaosConfig, ChaosSite, SitePolicy};
        let pool = WorkerPool::new(1, 8);
        let chaos = Chaos::new(
            ChaosConfig::quiet(7).site(ChaosSite::PoolPanic, SitePolicy::limited(1.0, 2)),
        );
        pool.install_chaos(Arc::clone(&chaos));
        let done = Arc::new(AtomicUsize::new(0));
        for _ in 0..5 {
            let done = Arc::clone(&done);
            pool.submit(move || {
                done.fetch_add(1, Ordering::SeqCst);
            })
            .unwrap();
        }
        pool.shutdown();
        // The first two jobs were replaced by injected panics; the worker
        // survived and ran the remaining three.
        assert_eq!(chaos.fired(ChaosSite::PoolPanic), 2);
        assert_eq!(done.load(Ordering::SeqCst), 3);
    }
}
