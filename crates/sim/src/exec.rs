//! Deterministic chunked fan-out executor.
//!
//! Both embarrassingly parallel workloads in this suite — Monte Carlo fault
//! injection over pattern blocks and δ(ε⃗) sweeps over grid points — reduce
//! to the same shape: *N independent chunks of work, each identified by its
//! index, whose results must be merged in index order*. [`ChunkExecutor`]
//! implements exactly that shape on `std::thread::scope` (no external
//! thread-pool dependency, per the workspace's offline dependency policy):
//!
//! * Work is handed out dynamically through an atomic cursor, so uneven
//!   chunk costs load-balance across workers.
//! * Every result is tagged with its chunk index and the merged `Vec` is
//!   reassembled in index order, so the output is **independent of thread
//!   count and scheduling** — callers that also make each chunk's *content*
//!   independent of scheduling (e.g. by deriving per-chunk RNG streams from
//!   the chunk index, see [`crate::parallel`]) get bit-identical results
//!   for any `threads` value.
//! * Workers can keep per-thread scratch state (simulator buffers) via
//!   [`ChunkExecutor::map_chunks_with`], amortizing allocations across all
//!   chunks a worker processes.

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Number of hardware threads available to this process (at least 1).
#[must_use]
pub fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// A fixed-width deterministic executor over indexed chunks.
///
/// # Examples
///
/// ```
/// use relogic_sim::exec::ChunkExecutor;
///
/// let exec = ChunkExecutor::new(4);
/// let squares = exec.map_chunks(8, |i| i * i);
/// assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
/// ```
#[derive(Clone, Copy, Debug)]
pub struct ChunkExecutor {
    threads: usize,
}

impl ChunkExecutor {
    /// Creates an executor running on `threads` worker threads;
    /// `0` auto-detects [`available_threads`].
    #[must_use]
    pub fn new(threads: usize) -> Self {
        ChunkExecutor {
            threads: if threads == 0 {
                available_threads()
            } else {
                threads
            },
        }
    }

    /// The resolved worker-thread count.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Maps `work` over chunk indices `0..chunks`, returning results in
    /// index order regardless of which worker processed which chunk.
    pub fn map_chunks<T, F>(&self, chunks: usize, work: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        self.map_chunks_with(chunks, || (), |(), i| work(i))
    }

    /// Like [`ChunkExecutor::map_chunks`], but each worker thread first
    /// builds scratch state with `init` and reuses it for every chunk it
    /// processes — the hook the Monte Carlo engine uses to allocate its
    /// simulator buffers once per worker rather than once per chunk.
    ///
    /// # Panics
    ///
    /// Propagates a panic from any worker thread.
    pub fn map_chunks_with<S, T, I, F>(&self, chunks: usize, init: I, work: F) -> Vec<T>
    where
        T: Send,
        I: Fn() -> S + Sync,
        F: Fn(&mut S, usize) -> T + Sync,
    {
        if self.threads <= 1 || chunks <= 1 {
            let mut scratch = init();
            return (0..chunks).map(|i| work(&mut scratch, i)).collect();
        }

        let workers = self.threads.min(chunks);
        let cursor = AtomicUsize::new(0);
        let mut tagged: Vec<(usize, T)> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| {
                        let mut scratch = init();
                        let mut produced = Vec::new();
                        loop {
                            let i = cursor.fetch_add(1, Ordering::Relaxed);
                            if i >= chunks {
                                break;
                            }
                            produced.push((i, work(&mut scratch, i)));
                        }
                        produced
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| match h.join() {
                    Ok(produced) => produced,
                    // Re-raise the worker's panic payload on the caller's
                    // thread instead of aborting with a generic message.
                    Err(payload) => std::panic::resume_unwind(payload),
                })
                .collect()
        });
        tagged.sort_unstable_by_key(|&(i, _)| i);
        debug_assert_eq!(tagged.len(), chunks);
        tagged.into_iter().map(|(_, t)| t).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_index_order() {
        for threads in [1, 2, 3, 8] {
            let exec = ChunkExecutor::new(threads);
            let out = exec.map_chunks(37, |i| i * 3);
            assert_eq!(out, (0..37).map(|i| i * 3).collect::<Vec<_>>());
        }
    }

    #[test]
    fn zero_threads_auto_detects() {
        let exec = ChunkExecutor::new(0);
        assert!(exec.threads() >= 1);
        assert_eq!(exec.map_chunks(3, |i| i), vec![0, 1, 2]);
    }

    #[test]
    fn empty_chunk_count_yields_empty_result() {
        let exec = ChunkExecutor::new(4);
        assert_eq!(exec.map_chunks(0, |i| i), Vec::<usize>::new());
    }

    #[test]
    fn scratch_state_is_reused_within_a_worker() {
        let exec = ChunkExecutor::new(2);
        // Each worker counts how many chunks it has processed in its own
        // scratch; the per-chunk snapshots must therefore be positive and
        // their per-worker maxima must sum to the chunk count.
        let counts = exec.map_chunks_with(
            24,
            || 0usize,
            |seen, _i| {
                *seen += 1;
                *seen
            },
        );
        assert_eq!(counts.len(), 24);
        assert!(counts.iter().all(|&c| c >= 1));
    }

    #[test]
    fn oversubscription_is_harmless() {
        let exec = ChunkExecutor::new(16);
        let out = exec.map_chunks(4, |i| i + 1);
        assert_eq!(out, vec![1, 2, 3, 4]);
    }
}
