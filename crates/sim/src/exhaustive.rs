//! Exact reliability evaluation by exhaustive enumeration.
//!
//! For small circuits (≤ ~20 inputs, ≤ ~16 noisy nodes) the reliability can
//! be computed *exactly*: enumerate every input pattern with the packed
//! simulator and every subset of failing nodes, weight each subset by
//! `Π ε_i · Π (1-ε_j)`, and accumulate output disagreement. These exact
//! values are the ground truth that both the Monte Carlo engine and the
//! analytical engines are validated against in the test suites.

use crate::packed::{exhaustive_block_count, exhaustive_lane_mask, PackedSim};
use relogic_netlist::{Circuit, NodeId};

/// Exact per-output reliability `δ_y(ε⃗)` and consolidated error.
#[derive(Clone, Debug)]
pub struct ExactReliability {
    /// Exact `δ_y` per primary output, in declaration order.
    pub per_output: Vec<f64>,
    /// Exact probability at least one output is in error.
    pub any_output: f64,
}

/// Computes exact reliability by enumerating inputs × failure subsets.
///
/// `node_eps[i]` is node `i`'s BSC crossover probability; nodes with ε = 0
/// never fail and do not contribute to the subset enumeration, so the cost
/// is `O(2^m · 2^k)` pattern-blocks where `m` is the input count and `k` the
/// number of noisy nodes.
///
/// # Panics
///
/// Panics if the circuit has more than 20 inputs, more than 20 noisy nodes,
/// or `node_eps.len() != circuit.len()`.
///
/// # Examples
///
/// ```
/// use relogic_netlist::Circuit;
/// use relogic_sim::exact_reliability;
///
/// let mut c = Circuit::new("inv");
/// let a = c.add_input("a");
/// let g = c.not(a);
/// c.add_output("y", g);
/// let exact = exact_reliability(&c, &[0.0, 0.1]);
/// assert!((exact.per_output[0] - 0.1).abs() < 1e-12);
/// ```
#[must_use]
pub fn exact_reliability(circuit: &Circuit, node_eps: &[f64]) -> ExactReliability {
    assert_eq!(node_eps.len(), circuit.len());
    assert!(
        circuit.input_count() <= 20,
        "exhaustive enumeration limited to 20 inputs"
    );
    let noisy: Vec<usize> = (0..circuit.len()).filter(|&i| node_eps[i] > 0.0).collect();
    assert!(
        noisy.len() <= 20,
        "exhaustive enumeration limited to 20 noisy nodes (got {})",
        noisy.len()
    );

    let outputs: Vec<usize> = circuit.outputs().iter().map(|o| o.node().index()).collect();
    let blocks = exhaustive_block_count(circuit.input_count());
    #[allow(clippy::cast_precision_loss)]
    let pattern_count = (exhaustive_lane_mask(circuit.input_count()).count_ones() as f64)
        * if circuit.input_count() > 6 {
            (blocks) as f64
        } else {
            1.0
        };

    let mut per_output = vec![0.0f64; outputs.len()];
    let mut any_output = 0.0f64;
    let mut clean = PackedSim::new(circuit);
    let mut faulty = PackedSim::new(circuit);
    let mut masks = vec![0u64; circuit.len()];
    let lane_mask = exhaustive_lane_mask(circuit.input_count());

    for block in 0..blocks {
        clean.exhaustive_inputs(block);
        clean.propagate(circuit);
        for subset in 0..1u64 << noisy.len() {
            // Probability of exactly this failure subset.
            let mut weight = 1.0f64;
            for (j, &node) in noisy.iter().enumerate() {
                weight *= if subset >> j & 1 == 1 {
                    node_eps[node]
                } else {
                    1.0 - node_eps[node]
                };
            }
            if weight == 0.0 {
                continue;
            }
            for m in masks.iter_mut() {
                *m = 0;
            }
            for (j, &node) in noisy.iter().enumerate() {
                if subset >> j & 1 == 1 {
                    masks[node] = u64::MAX;
                }
            }
            faulty.copy_from(&clean);
            // Restore clean inputs (copy_from already did) and repropagate.
            faulty.propagate_with_flips(circuit, &masks);
            let mut any = 0u64;
            for (k, &oidx) in outputs.iter().enumerate() {
                let diff = (clean.words()[oidx] ^ faulty.words()[oidx]) & lane_mask;
                #[allow(clippy::cast_precision_loss)]
                let frac = f64::from(diff.count_ones()) / pattern_count;
                per_output[k] += weight * frac;
                any |= diff;
            }
            #[allow(clippy::cast_precision_loss)]
            let frac = f64::from(any.count_ones()) / pattern_count;
            any_output += weight * frac;
        }
    }
    ExactReliability {
        per_output,
        any_output,
    }
}

/// Probability (over uniform inputs) that each output differs from its
/// fault-free value when the given nodes are *deterministically* flipped.
///
/// This is the quantity the paper analyzes for gate pairs in Fig. 1
/// ("if both G_x and G_z fail, the probability of an output failure is
/// 46/256").
///
/// # Panics
///
/// Panics if the circuit has more than 20 inputs.
#[must_use]
pub fn flip_influence(circuit: &Circuit, flipped: &[NodeId]) -> Vec<f64> {
    assert!(circuit.input_count() <= 20);
    let outputs: Vec<usize> = circuit.outputs().iter().map(|o| o.node().index()).collect();
    let blocks = exhaustive_block_count(circuit.input_count());
    let lane_mask = exhaustive_lane_mask(circuit.input_count());
    #[allow(clippy::cast_precision_loss)]
    let pattern_count = f64::from(lane_mask.count_ones())
        * if circuit.input_count() > 6 {
            blocks as f64
        } else {
            1.0
        };

    let mut masks = vec![0u64; circuit.len()];
    for &f in flipped {
        masks[f.index()] = u64::MAX;
    }
    let mut clean = PackedSim::new(circuit);
    let mut faulty = PackedSim::new(circuit);
    let mut counts = vec![0u64; outputs.len()];
    for block in 0..blocks {
        clean.exhaustive_inputs(block);
        clean.propagate(circuit);
        faulty.copy_from(&clean);
        faulty.propagate_with_flips(circuit, &masks);
        for (k, &oidx) in outputs.iter().enumerate() {
            let diff = (clean.words()[oidx] ^ faulty.words()[oidx]) & lane_mask;
            counts[k] += u64::from(diff.count_ones());
        }
    }
    #[allow(clippy::cast_precision_loss)]
    counts.iter().map(|&c| c as f64 / pattern_count).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{estimate, MonteCarloConfig};

    fn reconvergent() -> Circuit {
        let mut c = Circuit::new("t");
        let a = c.add_input("a");
        let b = c.add_input("b");
        let x = c.add_input("c");
        let g = c.and([a, b]);
        let o1 = c.or([g, x]);
        let o2 = c.xor([g, x]);
        c.add_output("y1", o1);
        c.add_output("y2", o2);
        c
    }

    #[test]
    fn exact_matches_hand_computation_for_inverter_chain() {
        let mut c = Circuit::new("chain");
        let a = c.add_input("a");
        let g1 = c.not(a);
        let g2 = c.not(g1);
        c.add_output("y", g2);
        let eps = 0.1;
        let exact = exact_reliability(&c, &[0.0, eps, eps]);
        let expect = 2.0 * eps * (1.0 - eps);
        assert!((exact.per_output[0] - expect).abs() < 1e-12);
    }

    #[test]
    fn exact_agrees_with_monte_carlo() {
        let c = reconvergent();
        let eps: Vec<f64> = c
            .iter()
            .map(|(_, n)| if n.kind().is_gate() { 0.12 } else { 0.0 })
            .collect();
        let exact = exact_reliability(&c, &eps);
        let mc = estimate(
            &c,
            &eps,
            &MonteCarloConfig {
                patterns: 1 << 18,
                ..MonteCarloConfig::default()
            },
        );
        for k in 0..2 {
            assert!(
                (exact.per_output[k] - mc.per_output()[k]).abs() < 0.005,
                "output {k}: exact {} vs mc {}",
                exact.per_output[k],
                mc.per_output()[k]
            );
        }
        assert!((exact.any_output - mc.any_output()).abs() < 0.005);
    }

    #[test]
    fn exact_any_output_bounded_by_sum_and_max() {
        let c = reconvergent();
        let eps: Vec<f64> = c
            .iter()
            .map(|(_, n)| if n.kind().is_gate() { 0.2 } else { 0.0 })
            .collect();
        let exact = exact_reliability(&c, &eps);
        let max = exact.per_output.iter().cloned().fold(f64::MIN, f64::max);
        let sum: f64 = exact.per_output.iter().sum();
        assert!(exact.any_output >= max - 1e-12);
        assert!(exact.any_output <= sum + 1e-12);
    }

    #[test]
    fn flip_influence_of_single_gate_is_its_observability() {
        // y = (a & b) | c: flipping the AND changes y iff c = 0 => 1/2.
        let mut c = Circuit::new("t");
        let a = c.add_input("a");
        let b = c.add_input("b");
        let x = c.add_input("c");
        let g = c.and([a, b]);
        let y = c.or([g, x]);
        c.add_output("y", y);
        let inf = flip_influence(&c, &[g]);
        assert!((inf[0] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn flip_influence_of_two_gates_can_mask() {
        // Two inverters in series: flipping both restores the output.
        let mut c = Circuit::new("t");
        let a = c.add_input("a");
        let g1 = c.not(a);
        let g2 = c.not(g1);
        c.add_output("y", g2);
        let both = flip_influence(
            &c,
            &[
                relogic_netlist::NodeId::from_index(1),
                relogic_netlist::NodeId::from_index(2),
            ],
        );
        assert_eq!(both[0], 0.0);
        let one = flip_influence(&c, &[relogic_netlist::NodeId::from_index(1)]);
        assert_eq!(one[0], 1.0);
    }

    #[test]
    fn more_than_six_inputs_enumerates_blocks() {
        // 8-input parity tree: flipping the root always observable.
        let mut c = Circuit::new("parity8");
        let ins: Vec<_> = (0..8).map(|i| c.add_input(format!("x{i}"))).collect();
        let root = c.xor(ins);
        c.add_output("y", root);
        let inf = flip_influence(&c, &[root]);
        assert_eq!(inf[0], 1.0);
        let eps = {
            let mut v = vec![0.0; c.len()];
            v[root.index()] = 0.25;
            v
        };
        let exact = exact_reliability(&c, &eps);
        assert!((exact.per_output[0] - 0.25).abs() < 1e-12);
    }

    #[test]
    fn zero_eps_subsets_are_skipped() {
        let c = reconvergent();
        let eps = vec![0.0; c.len()];
        let exact = exact_reliability(&c, &eps);
        assert_eq!(exact.per_output, vec![0.0, 0.0]);
        assert_eq!(exact.any_output, 0.0);
    }
}
