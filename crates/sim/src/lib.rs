//! 64-bit parallel-pattern simulation and Monte Carlo fault injection for
//! the `relogic` reliability-analysis suite.
//!
//! This crate is the *reference* side of the DATE 2007 reproduction: the
//! paper validates its analytical reliability algorithms against "a 64-bit
//! parallel pattern simulator … to implement a Monte Carlo framework for
//! reliability analysis based upon fault injection", which is exactly what
//! lives here:
//!
//! * [`PackedSim`] — 64 patterns per machine word, one topological sweep
//!   per block, with XOR fault-mask injection.
//! * [`BiasedBits`] — `Bernoulli(ε)` fault masks at one RNG word per binary
//!   digit of ε.
//! * [`estimate`] — the Monte Carlo reliability estimator (per-output δ,
//!   consolidated any-output error, joint output pairs, per-node
//!   conditional error statistics), chunked over seed-derived RNG streams
//!   so results are bit-identical for every thread count.
//! * [`CircuitTape`] / [`estimate_tape`] — the compiled fast path: the
//!   circuit lowered once into a flat slot-indexed instruction tape,
//!   executed by a fused wide kernel (`u64×N` lanes, clean and noisy
//!   planes in one pass, fault masks generated in-lane from a
//!   position-based RNG). Bit-identical across thread counts *and* lane
//!   widths; several times faster than the graph walker.
//! * [`exec::ChunkExecutor`] — the deterministic fan-out executor behind
//!   the Monte Carlo engine and the ε-sweep drivers in `relogic::sweep`.
//! * [`exact_reliability`] / [`flip_influence`] — exhaustive ground truth
//!   for small circuits.
//! * [`signal_probabilities`] / [`joint_input_counts`] /
//!   [`observabilities`] — sampling backends for the quantities the
//!   analytical engines need (weight vectors, observabilities).

#![warn(missing_docs)]
#![warn(clippy::all)]

mod bits;
pub mod cancel;
#[cfg(any(test, feature = "chaos"))]
pub mod chaos;
mod error;
mod estimate;
pub mod exec;
mod exhaustive;
mod monte_carlo;
mod packed;
pub mod parallel;
mod sampler;
mod tape;
mod tape_exec;

/// Pins the `chaos` feature gate: without `--features chaos` the fault
/// injector must not exist in the compiled library, so this doctest —
/// which only runs in non-chaos builds — must fail to compile.
///
/// ```compile_fail
/// use relogic_sim::chaos::Chaos; // the `chaos` feature is off
/// ```
#[cfg(not(any(test, feature = "chaos")))]
pub const CHAOS_FEATURE_GATED: () = ();

pub use bits::{stats, BiasedBits, DEFAULT_RESOLUTION};
pub use cancel::{CancelToken, Cancelled};
pub use error::SimError;
pub use estimate::{
    joint_input_counts, joint_input_counts_biased, observabilities, observabilities_biased,
    signal_probabilities, signal_probabilities_biased, ObservabilityEstimate, MAX_COUNTED_ARITY,
};
pub use exec::{available_threads, ChunkExecutor, SubmitRejection};
pub use exhaustive::{exact_reliability, flip_influence, ExactReliability};
pub use monte_carlo::{
    estimate, try_estimate, try_estimate_cancellable, MonteCarloConfig, NodeErrorStats,
    ReliabilityEstimate,
};
pub use packed::{exhaustive_block_count, exhaustive_lane_mask, exhaustive_word, PackedSim};
pub use sampler::InputSampler;
pub use tape::{CircuitTape, OwnedTapeParts, TapeParts};
pub use tape_exec::{
    estimate_tape, try_estimate_tape, try_estimate_tape_cancellable, DEFAULT_LANES,
};
