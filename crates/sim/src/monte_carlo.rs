//! Monte Carlo fault-injection reliability estimation — the paper's
//! reference method.
//!
//! Every node `i` (gate or primary input) is a binary symmetric channel
//! that flips its computed value with probability `ε_i`, independently per
//! pattern. Reliability `δ_y(ε⃗)` of output `y` is estimated as the fraction
//! of sampled patterns on which the noisy circuit's value of `y` differs
//! from the fault-free value.
//!
//! Execution is chunked and (optionally) multi-threaded: the pattern budget
//! is cut into fixed-width chunks, each drawing from its own seed-derived
//! RNG stream, so the estimate is **bit-identical for every thread count**
//! (see [`crate::parallel`] for the scheme).

use crate::{BiasedBits, SimError};
use relogic_netlist::Circuit;

/// Configuration for [`estimate`].
#[derive(Clone, Debug)]
pub struct MonteCarloConfig {
    /// Number of random input patterns (rounded up to a multiple of 64).
    pub patterns: u64,
    /// RNG seed; the same seed reproduces the same estimate exactly.
    pub seed: u64,
    /// Binary digits of resolution for the ε-biased bit generators.
    pub bit_resolution: u32,
    /// Output-index pairs whose joint error probability should be tracked.
    pub joint_pairs: Vec<(usize, usize)>,
    /// Track per-node conditional error statistics (doubles memory traffic;
    /// used to cross-validate the analytical engines).
    pub track_nodes: bool,
    /// Independent per-input signal probabilities (`None` = uniform).
    pub input_probs: Option<Vec<f64>>,
    /// Worker threads for fault injection; `0` auto-detects the machine's
    /// parallelism. The estimate is bit-identical for every value — only
    /// wall-clock time changes.
    pub threads: usize,
}

impl Default for MonteCarloConfig {
    fn default() -> Self {
        MonteCarloConfig {
            patterns: 65_536,
            seed: 0x5EED_0001,
            bit_resolution: crate::bits::DEFAULT_RESOLUTION,
            joint_pairs: Vec::new(),
            track_nodes: false,
            input_probs: None,
            threads: 0,
        }
    }
}

/// Per-node conditional error statistics gathered during fault injection.
///
/// For node `i`, `p01(i)` estimates `Pr(noisy = 1 | fault-free = 0)` and
/// `p10(i)` estimates `Pr(noisy = 0 | fault-free = 1)` — exactly the
/// quantities the single-pass algorithm propagates, so these are the ground
/// truth for validating it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NodeErrorStats {
    clean0: Vec<u64>,
    clean1: Vec<u64>,
    err01: Vec<u64>,
    err10: Vec<u64>,
}

impl NodeErrorStats {
    pub(crate) fn new(n: usize) -> Self {
        NodeErrorStats {
            clean0: vec![0; n],
            clean1: vec![0; n],
            err01: vec![0; n],
            err10: vec![0; n],
        }
    }

    /// Tallies one 64-pattern block of node `i`: `cw` is the fault-free
    /// word, `nw` the noisy word.
    pub(crate) fn accumulate(&mut self, i: usize, cw: u64, nw: u64) {
        let diff = cw ^ nw;
        self.clean1[i] += u64::from(cw.count_ones());
        self.clean0[i] += u64::from(cw.count_zeros());
        self.err01[i] += u64::from((diff & !cw).count_ones());
        self.err10[i] += u64::from((diff & cw).count_ones());
    }

    /// Adds another tally into this one.
    pub(crate) fn merge(&mut self, other: &NodeErrorStats) {
        debug_assert_eq!(self.clean0.len(), other.clean0.len());
        for (a, b) in self.clean0.iter_mut().zip(&other.clean0) {
            *a += b;
        }
        for (a, b) in self.clean1.iter_mut().zip(&other.clean1) {
            *a += b;
        }
        for (a, b) in self.err01.iter_mut().zip(&other.err01) {
            *a += b;
        }
        for (a, b) in self.err10.iter_mut().zip(&other.err10) {
            *a += b;
        }
    }

    /// Estimated `Pr(0→1 error | fault-free value 0)` at node `i`
    /// (`NaN` if the fault-free value is never 0).
    #[must_use]
    pub fn p01(&self, i: usize) -> f64 {
        #[allow(clippy::cast_precision_loss)]
        if self.clean0[i] == 0 {
            f64::NAN
        } else {
            self.err01[i] as f64 / self.clean0[i] as f64
        }
    }

    /// Estimated `Pr(1→0 error | fault-free value 1)` at node `i`
    /// (`NaN` if the fault-free value is never 1).
    #[must_use]
    pub fn p10(&self, i: usize) -> f64 {
        #[allow(clippy::cast_precision_loss)]
        if self.clean1[i] == 0 {
            f64::NAN
        } else {
            self.err10[i] as f64 / self.clean1[i] as f64
        }
    }

    /// Estimated fault-free signal probability `Pr(node = 1)`.
    #[must_use]
    pub fn signal_probability(&self, i: usize) -> f64 {
        #[allow(clippy::cast_precision_loss)]
        {
            self.clean1[i] as f64 / (self.clean0[i] + self.clean1[i]) as f64
        }
    }

    /// Unconditional error probability at node `i`.
    #[must_use]
    pub fn error_probability(&self, i: usize) -> f64 {
        #[allow(clippy::cast_precision_loss)]
        {
            (self.err01[i] + self.err10[i]) as f64 / (self.clean0[i] + self.clean1[i]) as f64
        }
    }
}

/// Result of a Monte Carlo reliability run.
#[derive(Clone, Debug, PartialEq)]
pub struct ReliabilityEstimate {
    patterns: u64,
    per_output: Vec<f64>,
    any_output: f64,
    joint: Vec<((usize, usize), f64)>,
    node_stats: Option<NodeErrorStats>,
}

impl ReliabilityEstimate {
    /// Number of patterns actually simulated.
    #[must_use]
    pub fn patterns(&self) -> u64 {
        self.patterns
    }

    /// Estimated `δ_y` for each primary output, in declaration order.
    #[must_use]
    pub fn per_output(&self) -> &[f64] {
        &self.per_output
    }

    /// Estimated probability that *at least one* output is in error — the
    /// paper's "consolidated output error".
    #[must_use]
    pub fn any_output(&self) -> f64 {
        self.any_output
    }

    /// Joint error probability for a tracked output pair, if it was
    /// requested in [`MonteCarloConfig::joint_pairs`].
    #[must_use]
    pub fn joint(&self, a: usize, b: usize) -> Option<f64> {
        let key = (a.min(b), a.max(b));
        self.joint.iter().find(|(k, _)| *k == key).map(|&(_, p)| p)
    }

    /// Per-node conditional error statistics, if tracking was enabled.
    #[must_use]
    pub fn node_stats(&self) -> Option<&NodeErrorStats> {
        self.node_stats.as_ref()
    }

    /// Standard error of the `δ` estimate for output `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k` is out of range. Estimates produced by [`estimate`] /
    /// [`try_estimate`] always carry a nonzero pattern count, so the value
    /// is finite.
    #[must_use]
    pub fn std_error(&self, k: usize) -> f64 {
        crate::bits::stats::proportion_std_error(self.per_output[k], self.patterns)
    }

    /// Fallible [`ReliabilityEstimate::std_error`]: returns a typed error
    /// for an out-of-range output index or a zero pattern count (which
    /// would otherwise surface as `NaN` from a division by zero).
    ///
    /// # Errors
    ///
    /// [`SimError::OutputIndexOutOfRange`] if `k` does not name an output;
    /// [`SimError::ZeroPatternBudget`] if no patterns were simulated.
    pub fn try_std_error(&self, k: usize) -> Result<f64, SimError> {
        let &p = self
            .per_output
            .get(k)
            .ok_or(SimError::OutputIndexOutOfRange {
                index: k,
                outputs: self.per_output.len(),
            })?;
        if self.patterns == 0 {
            return Err(SimError::ZeroPatternBudget);
        }
        Ok(crate::bits::stats::proportion_std_error(p, self.patterns))
    }
}

/// Runs Monte Carlo fault injection on `circuit`.
///
/// `node_eps[i]` is the BSC crossover probability of node `i` (use 0 for
/// noise-free nodes; primary inputs may be given nonzero values to model
/// noisy inputs).
///
/// Fault injection is chunked over seed-derived RNG streams and executed on
/// [`MonteCarloConfig::threads`] worker threads; for a fixed `(seed,
/// patterns)` pair the estimate is bit-identical regardless of the thread
/// count.
///
/// # Panics
///
/// Panics if `node_eps.len() != circuit.len()`, if any ε is non-finite or
/// outside `[0, 1]`, if a joint pair references a nonexistent output, or if
/// `config.patterns` is zero. Use [`try_estimate`] to receive these
/// conditions as typed [`SimError`] values instead.
///
/// # Examples
///
/// ```
/// use relogic_netlist::Circuit;
/// use relogic_sim::{estimate, MonteCarloConfig};
///
/// let mut c = Circuit::new("inv");
/// let a = c.add_input("a");
/// let g = c.not(a);
/// c.add_output("y", g);
///
/// // Only the inverter is noisy: δ must equal ε exactly (in expectation).
/// let eps = vec![0.0, 0.1];
/// let r = estimate(&c, &eps, &MonteCarloConfig::default());
/// assert!((r.per_output()[0] - 0.1).abs() < 0.01);
/// ```
#[must_use]
pub fn estimate(
    circuit: &Circuit,
    node_eps: &[f64],
    config: &MonteCarloConfig,
) -> ReliabilityEstimate {
    match try_estimate(circuit, node_eps, config) {
        Ok(r) => r,
        Err(e) => panic!("{e}"),
    }
}

/// Fallible [`estimate`]: validates the ε vector, the joint-pair indices,
/// and the pattern budget up front, returning a typed [`SimError`] instead
/// of panicking on invalid input.
///
/// # Errors
///
/// * [`SimError::ZeroPatternBudget`] — `config.patterns == 0` (the estimate
///   would be `0/0`).
/// * [`SimError::EpsLengthMismatch`] — `node_eps` does not cover the
///   circuit.
/// * [`SimError::InvalidEpsilon`] — an ε entry is non-finite or outside
///   `[0, 1]`.
/// * [`SimError::JointPairOutOfRange`] — a tracked pair names a
///   nonexistent output.
/// * [`SimError::InputProbsMismatch`] — `config.input_probs` does not cover
///   the circuit's inputs.
pub fn try_estimate(
    circuit: &Circuit,
    node_eps: &[f64],
    config: &MonteCarloConfig,
) -> Result<ReliabilityEstimate, SimError> {
    try_estimate_cancellable(circuit, node_eps, config, &crate::CancelToken::new())
}

/// [`try_estimate`] under a [`crate::CancelToken`]: the token is polled at
/// every chunk hand-out ([`crate::parallel::CHUNK_PATTERNS`] patterns, the
/// check-interval granularity of the graph engine). A fired token returns
/// [`SimError::Cancelled`] — never a partial estimate. A run that completes
/// before the token fires is bit-identical to an undeadlined run.
///
/// # Errors
///
/// Everything [`try_estimate`] returns, plus [`SimError::Cancelled`] when
/// `cancel` fires mid-run.
pub fn try_estimate_cancellable(
    circuit: &Circuit,
    node_eps: &[f64],
    config: &MonteCarloConfig,
    cancel: &crate::CancelToken,
) -> Result<ReliabilityEstimate, SimError> {
    let outputs = validate_run(circuit, node_eps, config)?;

    let gens: Vec<Option<BiasedBits>> = node_eps
        .iter()
        .map(|&e| {
            if e == 0.0 {
                None
            } else {
                Some(BiasedBits::new(e, config.bit_resolution))
            }
        })
        .collect();

    let sampler = match &config.input_probs {
        None => crate::InputSampler::uniform(circuit.input_count()),
        Some(p) => crate::InputSampler::independent(p),
    };
    let blocks = config.patterns.div_ceil(64).max(1);
    let total = blocks * 64;
    let counts = crate::parallel::fault_injection_counts_cancellable(
        circuit, &gens, &sampler, &outputs, config, blocks, cancel,
    )?;
    Ok(finalize_counts(total, counts, &config.joint_pairs))
}

/// Shared up-front validation for the graph and tape estimators: checks the
/// pattern budget, the ε vector, the joint-pair indices, and the input-bias
/// vector, returning the output node indices in declaration order.
///
/// Both engines must agree on what constitutes a valid run, so this is the
/// single place the checks live.
pub(crate) fn validate_run(
    circuit: &Circuit,
    node_eps: &[f64],
    config: &MonteCarloConfig,
) -> Result<Vec<usize>, SimError> {
    if config.patterns == 0 {
        return Err(SimError::ZeroPatternBudget);
    }
    if node_eps.len() != circuit.len() {
        return Err(SimError::EpsLengthMismatch {
            expected: circuit.len(),
            actual: node_eps.len(),
        });
    }
    for (i, &e) in node_eps.iter().enumerate() {
        if !e.is_finite() || !(0.0..=1.0).contains(&e) {
            return Err(SimError::InvalidEpsilon { index: i, value: e });
        }
    }
    let outputs: Vec<usize> = circuit.outputs().iter().map(|o| o.node().index()).collect();
    for &(a, b) in &config.joint_pairs {
        if a >= outputs.len() || b >= outputs.len() {
            return Err(SimError::JointPairOutOfRange {
                a,
                b,
                outputs: outputs.len(),
            });
        }
    }
    if let Some(p) = &config.input_probs {
        if p.len() != circuit.input_count() {
            return Err(SimError::InputProbsMismatch {
                expected: circuit.input_count(),
                actual: p.len(),
            });
        }
    }
    Ok(outputs)
}

/// Turns merged integer tallies into the final probability estimate.
/// Shared by the graph and tape engines, so both normalize identically.
pub(crate) fn finalize_counts(
    total: u64,
    counts: crate::parallel::FaultCounts,
    joint_pairs: &[(usize, usize)],
) -> ReliabilityEstimate {
    #[allow(clippy::cast_precision_loss)]
    let tf = total as f64;
    #[allow(clippy::cast_precision_loss)]
    let per_output: Vec<f64> = counts.out_err.iter().map(|&c| c as f64 / tf).collect();
    #[allow(clippy::cast_precision_loss)]
    let joint: Vec<((usize, usize), f64)> = joint_pairs
        .iter()
        .zip(&counts.joint_err)
        .map(|(&(a, b), &c)| ((a.min(b), a.max(b)), c as f64 / tf))
        .collect();
    #[allow(clippy::cast_precision_loss)]
    let any_output = counts.any_err as f64 / tf;

    ReliabilityEstimate {
        patterns: total,
        per_output,
        any_output,
        joint,
        node_stats: counts.node_stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform_eps(circuit: &Circuit, eps: f64) -> Vec<f64> {
        circuit
            .iter()
            .map(|(_, n)| if n.kind().is_gate() { eps } else { 0.0 })
            .collect()
    }

    #[test]
    fn single_noisy_inverter_matches_epsilon() {
        let mut c = Circuit::new("inv");
        let a = c.add_input("a");
        let g = c.not(a);
        c.add_output("y", g);
        let r = estimate(&c, &[0.0, 0.2], &MonteCarloConfig::default());
        assert!(
            (r.per_output()[0] - 0.2).abs() < 0.01,
            "{}",
            r.per_output()[0]
        );
        assert!((r.any_output() - 0.2).abs() < 0.01);
    }

    #[test]
    fn chain_of_inverters_composes_errors() {
        // Two noisy inverters in series: output errs iff exactly one flips:
        // δ = 2ε(1-ε).
        let mut c = Circuit::new("chain");
        let a = c.add_input("a");
        let g1 = c.not(a);
        let g2 = c.not(g1);
        c.add_output("y", g2);
        let eps = 0.1;
        let r = estimate(&c, &[0.0, eps, eps], &MonteCarloConfig::default());
        let expect = 2.0 * eps * (1.0 - eps);
        assert!(
            (r.per_output()[0] - expect).abs() < 0.01,
            "{} vs {expect}",
            r.per_output()[0]
        );
    }

    #[test]
    fn noise_free_circuit_never_errs() {
        let mut c = Circuit::new("t");
        let a = c.add_input("a");
        let b = c.add_input("b");
        let g = c.and([a, b]);
        c.add_output("y", g);
        let r = estimate(&c, &uniform_eps(&c, 0.0), &MonteCarloConfig::default());
        assert_eq!(r.per_output()[0], 0.0);
        assert_eq!(r.any_output(), 0.0);
    }

    #[test]
    fn estimates_are_reproducible_by_seed() {
        let mut c = Circuit::new("t");
        let a = c.add_input("a");
        let b = c.add_input("b");
        let g = c.nand([a, b]);
        c.add_output("y", g);
        let eps = uniform_eps(&c, 0.15);
        let cfg = MonteCarloConfig {
            patterns: 4096,
            ..MonteCarloConfig::default()
        };
        let r1 = estimate(&c, &eps, &cfg);
        let r2 = estimate(&c, &eps, &cfg);
        assert_eq!(r1.per_output(), r2.per_output());
        assert_eq!(r1.patterns(), 4096);
    }

    #[test]
    fn joint_pairs_track_correlated_outputs() {
        // Two outputs of the same noisy gate err together always.
        let mut c = Circuit::new("t");
        let a = c.add_input("a");
        let g = c.not(a);
        c.add_output("y1", g);
        c.add_output("y2", g);
        let cfg = MonteCarloConfig {
            joint_pairs: vec![(0, 1)],
            ..MonteCarloConfig::default()
        };
        let r = estimate(&c, &[0.0, 0.25], &cfg);
        let j = r.joint(0, 1).unwrap();
        assert!((j - r.per_output()[0]).abs() < 1e-12);
        assert!(r.joint(1, 0).is_some(), "pair lookup is order-insensitive");
        assert!(r.joint(0, 0).is_none());
    }

    #[test]
    fn node_stats_match_closed_form_for_and_gate() {
        // AND gate with only itself noisy: p01 = p10 = ε by the BSC model.
        let mut c = Circuit::new("t");
        let a = c.add_input("a");
        let b = c.add_input("b");
        let g = c.and([a, b]);
        c.add_output("y", g);
        let cfg = MonteCarloConfig {
            track_nodes: true,
            patterns: 1 << 17,
            ..MonteCarloConfig::default()
        };
        let r = estimate(&c, &[0.0, 0.0, 0.3], &cfg);
        let stats = r.node_stats().unwrap();
        assert!((stats.p01(g.index()) - 0.3).abs() < 0.01);
        assert!((stats.p10(g.index()) - 0.3).abs() < 0.01);
        assert!((stats.signal_probability(g.index()) - 0.25).abs() < 0.01);
        // Unconditional error probability is ε regardless of signal prob.
        assert!((stats.error_probability(g.index()) - 0.3).abs() < 0.01);
    }

    #[test]
    fn noisy_inputs_are_supported() {
        let mut c = Circuit::new("t");
        let a = c.add_input("a");
        let g = c.buf(a);
        c.add_output("y", g);
        let r = estimate(&c, &[0.1, 0.0], &MonteCarloConfig::default());
        assert!((r.per_output()[0] - 0.1).abs() < 0.01);
    }

    #[test]
    #[should_panic(expected = "need one ε per node")]
    fn wrong_eps_length_panics() {
        let mut c = Circuit::new("t");
        let a = c.add_input("a");
        c.add_output("y", a);
        let _ = estimate(&c, &[0.0, 0.0], &MonteCarloConfig::default());
    }

    #[test]
    fn try_estimate_returns_typed_errors() {
        let mut c = Circuit::new("t");
        let a = c.add_input("a");
        let g = c.not(a);
        c.add_output("y", g);
        // Zero pattern budget.
        let cfg = MonteCarloConfig {
            patterns: 0,
            ..MonteCarloConfig::default()
        };
        assert_eq!(
            try_estimate(&c, &[0.0, 0.1], &cfg),
            Err(SimError::ZeroPatternBudget)
        );
        // Length mismatch.
        assert_eq!(
            try_estimate(&c, &[0.0], &MonteCarloConfig::default()),
            Err(SimError::EpsLengthMismatch {
                expected: 2,
                actual: 1
            })
        );
        // Non-finite and out-of-range ε.
        assert!(matches!(
            try_estimate(&c, &[0.0, f64::NAN], &MonteCarloConfig::default()),
            Err(SimError::InvalidEpsilon { index: 1, .. })
        ));
        assert!(matches!(
            try_estimate(&c, &[-0.1, 0.0], &MonteCarloConfig::default()),
            Err(SimError::InvalidEpsilon { index: 0, .. })
        ));
        // Bad joint pair.
        let cfg = MonteCarloConfig {
            joint_pairs: vec![(0, 7)],
            ..MonteCarloConfig::default()
        };
        assert!(matches!(
            try_estimate(&c, &[0.0, 0.1], &cfg),
            Err(SimError::JointPairOutOfRange { b: 7, .. })
        ));
        // Bad input-bias vector.
        let cfg = MonteCarloConfig {
            input_probs: Some(vec![0.5, 0.5]),
            ..MonteCarloConfig::default()
        };
        assert!(matches!(
            try_estimate(&c, &[0.0, 0.1], &cfg),
            Err(SimError::InputProbsMismatch { .. })
        ));
        // A valid configuration still works.
        let r = try_estimate(&c, &[0.0, 0.2], &MonteCarloConfig::default()).unwrap();
        assert!((r.per_output()[0] - 0.2).abs() < 0.01);
    }

    #[test]
    fn try_std_error_guards_bad_indices() {
        let mut c = Circuit::new("t");
        let a = c.add_input("a");
        let g = c.not(a);
        c.add_output("y", g);
        let r = estimate(&c, &[0.0, 0.3], &MonteCarloConfig::default());
        assert!(r.try_std_error(0).unwrap().is_finite());
        assert_eq!(
            r.try_std_error(3),
            Err(SimError::OutputIndexOutOfRange {
                index: 3,
                outputs: 1
            })
        );
    }

    #[test]
    #[should_panic(expected = "pattern budget is zero")]
    fn zero_patterns_panics_in_infallible_wrapper() {
        let mut c = Circuit::new("t");
        let a = c.add_input("a");
        c.add_output("y", a);
        let cfg = MonteCarloConfig {
            patterns: 0,
            ..MonteCarloConfig::default()
        };
        let _ = estimate(&c, &[0.0], &cfg);
    }

    #[test]
    fn std_error_shrinks_with_patterns() {
        let mut c = Circuit::new("t");
        let a = c.add_input("a");
        let g = c.not(a);
        c.add_output("y", g);
        let small = estimate(
            &c,
            &[0.0, 0.3],
            &MonteCarloConfig {
                patterns: 1024,
                ..MonteCarloConfig::default()
            },
        );
        let large = estimate(
            &c,
            &[0.0, 0.3],
            &MonteCarloConfig {
                patterns: 1 << 16,
                ..MonteCarloConfig::default()
            },
        );
        assert!(large.std_error(0) < small.std_error(0));
    }
}
