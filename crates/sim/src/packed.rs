//! 64-lane parallel-pattern logic simulation.
//!
//! One `u64` word per node holds the node's value for 64 independent input
//! patterns; a full-circuit sweep is a single pass over the nodes in
//! topological order. This is the same engine the DATE 2007 paper used for
//! its Monte Carlo reference ("a 64-bit parallel pattern simulator").

use rand::RngCore;
use relogic_netlist::{Circuit, GateKind, NodeId};

/// Evaluates one gate over a 64-pattern word, fetching each fanin word
/// through `fetch` (called with the fanin position `0..arity`).
///
/// This is the single per-op word kernel shared by the graph-walking
/// simulator ([`PackedSim::propagate`] and friends) and the compiled tape
/// executor, so the two paths cannot drift apart. The closure form lets
/// each caller supply its own storage layout (`NodeId`-indexed words here,
/// slot×lane-strided words on the tape) without a gather into a scratch
/// buffer.
///
/// # Panics
///
/// Panics on [`GateKind::Input`], which has no evaluation rule.
#[inline(always)]
pub(crate) fn gate_word<F: FnMut(usize) -> u64>(kind: GateKind, arity: usize, mut fetch: F) -> u64 {
    match kind {
        GateKind::Input => panic!("primary inputs have no evaluation rule"),
        GateKind::Const(false) => 0,
        GateKind::Const(true) => u64::MAX,
        GateKind::Buf => fetch(0),
        GateKind::Not => !fetch(0),
        GateKind::And => (0..arity).fold(u64::MAX, |acc, i| acc & fetch(i)),
        GateKind::Nand => !(0..arity).fold(u64::MAX, |acc, i| acc & fetch(i)),
        GateKind::Or => (0..arity).fold(0, |acc, i| acc | fetch(i)),
        GateKind::Nor => !(0..arity).fold(0, |acc, i| acc | fetch(i)),
        GateKind::Xor => (0..arity).fold(0, |acc, i| acc ^ fetch(i)),
        GateKind::Xnor => !(0..arity).fold(0, |acc, i| acc ^ fetch(i)),
    }
}

/// Reusable buffers for simulating one circuit block-by-block.
///
/// # Examples
///
/// ```
/// use relogic_netlist::Circuit;
/// use relogic_sim::PackedSim;
///
/// let mut c = Circuit::new("t");
/// let a = c.add_input("a");
/// let b = c.add_input("b");
/// let g = c.xor([a, b]);
/// c.add_output("y", g);
///
/// let mut sim = PackedSim::new(&c);
/// sim.set_input_word(0, 0b1100);
/// sim.set_input_word(1, 0b1010);
/// sim.propagate(&c);
/// assert_eq!(sim.node_word(g) & 0b1111, 0b0110);
/// ```
#[derive(Clone, Debug)]
pub struct PackedSim {
    words: Vec<u64>,
    input_ids: Vec<NodeId>,
}

impl PackedSim {
    /// Allocates simulation state for `circuit`.
    #[must_use]
    pub fn new(circuit: &Circuit) -> Self {
        PackedSim {
            words: vec![0; circuit.len()],
            input_ids: circuit.inputs().to_vec(),
        }
    }

    /// Sets the 64-pattern word of primary input `position`.
    ///
    /// # Panics
    ///
    /// Panics if `position` is out of range.
    pub fn set_input_word(&mut self, position: usize, word: u64) {
        let id = self.input_ids[position];
        self.words[id.index()] = word;
    }

    /// Fills every primary input with uniform random patterns.
    pub fn randomize_inputs<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in 0..self.input_ids.len() {
            let id = self.input_ids[i];
            self.words[id.index()] = rng.next_u64();
        }
    }

    /// Fills the inputs with block `block` of the exhaustive enumeration of
    /// all `2^m` input patterns: pattern index `block * 64 + lane` assigns
    /// input `i` the `i`-th bit of the index.
    ///
    /// Useful for exact evaluation of circuits with up to ~24 inputs.
    pub fn exhaustive_inputs(&mut self, block: u64) {
        for (pos, &id) in self.input_ids.clone().iter().enumerate() {
            self.words[id.index()] = exhaustive_word(pos, block);
        }
    }

    /// Propagates input words through the circuit (no faults).
    pub fn propagate(&mut self, circuit: &Circuit) {
        for (id, node) in circuit.iter() {
            match node.kind() {
                GateKind::Input => {}
                kind => {
                    let fanins = node.fanins();
                    let w = gate_word(kind, fanins.len(), |i| self.words[fanins[i].index()]);
                    self.words[id.index()] = w;
                }
            }
        }
    }

    /// Propagates with per-node XOR fault masks: after computing node `i`,
    /// its word is XOR-ed with `flip_masks[i]` (primary inputs included).
    ///
    /// This implements the von Neumann BSC gate-noise model when the masks
    /// are Bernoulli(ε) words, and deterministic fault injection when the
    /// masks are all-ones/all-zeros.
    ///
    /// # Panics
    ///
    /// Panics if `flip_masks.len() != circuit.len()`.
    pub fn propagate_with_flips(&mut self, circuit: &Circuit, flip_masks: &[u64]) {
        assert_eq!(flip_masks.len(), circuit.len());
        for (id, node) in circuit.iter() {
            let idx = id.index();
            match node.kind() {
                GateKind::Input => {
                    self.words[idx] ^= flip_masks[idx];
                }
                kind => {
                    let fanins = node.fanins();
                    let w = gate_word(kind, fanins.len(), |i| self.words[fanins[i].index()]);
                    self.words[idx] = w ^ flip_masks[idx];
                }
            }
        }
    }

    /// The current 64-pattern word of `node`.
    #[must_use]
    pub fn node_word(&self, node: NodeId) -> u64 {
        self.words[node.index()]
    }

    /// All node words, indexed by [`NodeId::index`].
    #[must_use]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Copies another simulator's words into this one (both must be sized
    /// for the same circuit).
    ///
    /// # Panics
    ///
    /// Panics if the two simulators have different node counts.
    pub fn copy_from(&mut self, other: &PackedSim) {
        assert_eq!(self.words.len(), other.words.len());
        self.words.copy_from_slice(&other.words);
    }
}

/// The exhaustive-enumeration word for input `position` in `block`:
/// bit `lane` is bit `position` of the pattern index `block * 64 + lane`.
#[must_use]
pub fn exhaustive_word(position: usize, block: u64) -> u64 {
    match position {
        0 => 0xAAAA_AAAA_AAAA_AAAA,
        1 => 0xCCCC_CCCC_CCCC_CCCC,
        2 => 0xF0F0_F0F0_F0F0_F0F0,
        3 => 0xFF00_FF00_FF00_FF00,
        4 => 0xFFFF_0000_FFFF_0000,
        5 => 0xFFFF_FFFF_0000_0000,
        p => {
            // Patterns beyond the 6 in-word inputs repeat per block.
            if block >> (p - 6) & 1 == 1 {
                u64::MAX
            } else {
                0
            }
        }
    }
}

/// Number of 64-pattern blocks needed to enumerate all `2^inputs` patterns
/// (at least 1; inputs beyond 63 are rejected).
///
/// # Panics
///
/// Panics if `inputs > 30`, where exhaustive enumeration is hopeless anyway.
#[must_use]
pub fn exhaustive_block_count(inputs: usize) -> u64 {
    assert!(inputs <= 30, "exhaustive enumeration over {inputs} inputs");
    if inputs <= 6 {
        1
    } else {
        1u64 << (inputs - 6)
    }
}

/// Mask selecting the lanes that hold valid patterns when enumerating
/// `2^inputs` patterns (only the final block of a small circuit is partial).
#[must_use]
pub fn exhaustive_lane_mask(inputs: usize) -> u64 {
    if inputs >= 6 {
        u64::MAX
    } else {
        (1u64 << (1usize << inputs)) - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn full_adder() -> Circuit {
        let mut c = Circuit::new("fa");
        let a = c.add_input("a");
        let b = c.add_input("b");
        let cin = c.add_input("cin");
        let s1 = c.xor([a, b]);
        let sum = c.xor([s1, cin]);
        let c1 = c.and([a, b]);
        let c2 = c.and([s1, cin]);
        let cout = c.or([c1, c2]);
        c.add_output("sum", sum);
        c.add_output("cout", cout);
        c
    }

    #[test]
    fn packed_matches_scalar_on_random_patterns() {
        let c = full_adder();
        let mut sim = PackedSim::new(&c);
        let mut rng = SmallRng::seed_from_u64(11);
        sim.randomize_inputs(&mut rng);
        let input_words: Vec<u64> = (0..3).map(|p| sim.node_word(c.inputs()[p])).collect();
        sim.propagate(&c);
        for lane in 0..64 {
            let bits: Vec<bool> = input_words.iter().map(|w| w >> lane & 1 != 0).collect();
            let expect = c.eval(&bits);
            for (k, out) in c.outputs().iter().enumerate() {
                assert_eq!(
                    sim.node_word(out.node()) >> lane & 1 != 0,
                    expect[k],
                    "lane {lane} output {k}"
                );
            }
        }
    }

    #[test]
    fn exhaustive_enumeration_covers_all_patterns() {
        let c = full_adder();
        let mut sim = PackedSim::new(&c);
        assert_eq!(exhaustive_block_count(3), 1);
        sim.exhaustive_inputs(0);
        sim.propagate(&c);
        let mask = exhaustive_lane_mask(3);
        assert_eq!(mask, 0xFF);
        for lane in 0..8u32 {
            let bits: Vec<bool> = (0..3).map(|j| lane >> j & 1 != 0).collect();
            let expect = c.eval(&bits);
            assert_eq!(
                sim.node_word(c.outputs()[0].node()) >> lane & 1 != 0,
                expect[0]
            );
        }
    }

    #[test]
    fn exhaustive_blocks_beyond_six_inputs() {
        // 8 inputs: 4 blocks; check input 7's word flips between blocks.
        assert_eq!(exhaustive_block_count(8), 4);
        assert_eq!(exhaustive_word(7, 0), 0);
        assert_eq!(exhaustive_word(7, 2), u64::MAX);
        assert_eq!(exhaustive_word(6, 1), u64::MAX);
        assert_eq!(exhaustive_word(6, 2), 0);
    }

    #[test]
    fn deterministic_flip_injection() {
        // y = a AND b; flipping the AND output inverts y everywhere.
        let mut c = Circuit::new("t");
        let a = c.add_input("a");
        let b = c.add_input("b");
        let g = c.and([a, b]);
        c.add_output("y", g);
        let mut clean = PackedSim::new(&c);
        clean.set_input_word(0, 0b1100);
        clean.set_input_word(1, 0b1010);
        clean.propagate(&c);
        let mut faulty = clean.clone();
        faulty.set_input_word(0, 0b1100);
        faulty.set_input_word(1, 0b1010);
        let mut masks = vec![0u64; c.len()];
        masks[g.index()] = u64::MAX;
        faulty.propagate_with_flips(&c, &masks);
        assert_eq!(clean.node_word(g) ^ faulty.node_word(g), u64::MAX);
    }

    #[test]
    fn input_flips_propagate() {
        let mut c = Circuit::new("t");
        let a = c.add_input("a");
        let g = c.not(a);
        c.add_output("y", g);
        let mut sim = PackedSim::new(&c);
        sim.set_input_word(0, 0);
        let mut masks = vec![0u64; c.len()];
        masks[a.index()] = 0b1;
        sim.propagate_with_flips(&c, &masks);
        assert_eq!(sim.node_word(g) & 0b11, 0b10);
    }

    #[test]
    fn copy_from_duplicates_state() {
        let c = full_adder();
        let mut s1 = PackedSim::new(&c);
        let mut rng = SmallRng::seed_from_u64(5);
        s1.randomize_inputs(&mut rng);
        s1.propagate(&c);
        let mut s2 = PackedSim::new(&c);
        s2.copy_from(&s1);
        assert_eq!(s1.words(), s2.words());
    }
}
