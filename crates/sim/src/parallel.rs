//! Deterministic multi-threaded Monte Carlo fault injection.
//!
//! The pattern budget is split into independent *chunks* of
//! [`CHUNK_PATTERNS`] patterns ([`CHUNK_BLOCKS`] 64-pattern simulator
//! blocks). Each chunk draws from its own RNG stream, seeded purely from
//! the run seed and the chunk index through a SplitMix64 derivation
//! ([`chunk_seed`]) — never from thread identity or scheduling order. All
//! per-chunk tallies are exact integer counters, and integer addition is
//! associative and commutative, so the merged estimate is **bit-identical
//! for every thread count**, including `threads = 1`:
//!
//! ```text
//! result(seed, patterns) = Σ_chunks counts(chunk_seed(seed, i), blocks_i)
//! ```
//!
//! The chunk width is a fixed protocol constant: changing it would change
//! which stream each pattern block draws from and therefore the sampled
//! estimate (not its distribution). It is sized so a chunk is coarse
//! enough to amortize executor handoff (1024 patterns ≈ tens of
//! microseconds of simulation on mid-size circuits) yet fine enough to
//! load-balance across many cores even for modest budgets.

use crate::cancel::{CancelToken, Cancelled};
use crate::exec::ChunkExecutor;
use crate::monte_carlo::{MonteCarloConfig, NodeErrorStats};
use crate::{BiasedBits, InputSampler, PackedSim};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use relogic_netlist::Circuit;

/// Simulator blocks per chunk (a protocol constant — see module docs).
pub const CHUNK_BLOCKS: u64 = 16;

/// Patterns per chunk: the granularity at which work is distributed and
/// RNG streams are split.
pub const CHUNK_PATTERNS: u64 = CHUNK_BLOCKS * 64;

/// Derives the RNG seed of chunk `chunk` from the run seed.
///
/// SplitMix64's output function over `seed + (chunk+1)·φ⁻¹·2⁶⁴` — the
/// standard way to fan one seed out into decorrelated streams. The `+1`
/// keeps chunk 0 from degenerating to the raw run seed.
#[must_use]
pub fn chunk_seed(seed: u64, chunk: u64) -> u64 {
    let mut z = seed.wrapping_add(chunk.wrapping_add(1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Exact integer tallies from one chunk (or the merge of many).
#[derive(Clone, Debug)]
pub(crate) struct FaultCounts {
    pub(crate) out_err: Vec<u64>,
    pub(crate) any_err: u64,
    pub(crate) joint_err: Vec<u64>,
    pub(crate) node_stats: Option<NodeErrorStats>,
}

impl FaultCounts {
    pub(crate) fn new(outputs: usize, joint: usize, nodes: Option<usize>) -> Self {
        FaultCounts {
            out_err: vec![0; outputs],
            any_err: 0,
            joint_err: vec![0; joint],
            node_stats: nodes.map(NodeErrorStats::new),
        }
    }

    /// Adds another tally into this one (pure integer sums, so the merge
    /// is order-independent).
    pub(crate) fn merge(&mut self, other: &FaultCounts) {
        for (a, b) in self.out_err.iter_mut().zip(&other.out_err) {
            *a += b;
        }
        self.any_err += other.any_err;
        for (a, b) in self.joint_err.iter_mut().zip(&other.joint_err) {
            *a += b;
        }
        if let (Some(mine), Some(theirs)) = (self.node_stats.as_mut(), other.node_stats.as_ref()) {
            mine.merge(theirs);
        }
    }
}

/// Per-worker scratch: simulator buffers reused across all chunks a worker
/// processes.
struct Scratch {
    clean: PackedSim,
    noisy: PackedSim,
    masks: Vec<u64>,
}

impl Scratch {
    fn new(circuit: &Circuit) -> Self {
        Scratch {
            clean: PackedSim::new(circuit),
            noisy: PackedSim::new(circuit),
            masks: vec![0u64; circuit.len()],
        }
    }
}

/// Runs chunked fault injection over `blocks` 64-pattern blocks, polling
/// `cancel` at every chunk hand-out (every [`CHUNK_PATTERNS`] patterns),
/// and merges the per-chunk tallies in chunk order. A run that completes
/// is merged in chunk order regardless of the token, so
/// completed-under-token results are bit-identical to token-free runs.
pub(crate) fn fault_injection_counts_cancellable(
    circuit: &Circuit,
    gens: &[Option<BiasedBits>],
    sampler: &InputSampler,
    outputs: &[usize],
    config: &MonteCarloConfig,
    blocks: u64,
    cancel: &CancelToken,
) -> Result<FaultCounts, Cancelled> {
    // On 32-bit hosts a pattern budget beyond usize::MAX chunks is
    // unreachable in practice; saturate rather than panic.
    let chunks = usize::try_from(blocks.div_ceil(CHUNK_BLOCKS)).unwrap_or(usize::MAX);
    let executor = ChunkExecutor::new(config.threads);
    let (tallies, _) = executor.try_map_chunks_with_state(
        chunks,
        cancel,
        "mc_chunk",
        || Scratch::new(circuit),
        |scratch, chunk| {
            Ok(run_chunk(
                circuit, gens, sampler, outputs, config, blocks, scratch, chunk,
            ))
        },
    )?;

    let mut merged = FaultCounts::new(
        outputs.len(),
        config.joint_pairs.len(),
        config.track_nodes.then(|| circuit.len()),
    );
    for tally in &tallies {
        merged.merge(tally);
    }
    Ok(merged)
}

/// Simulates one chunk's blocks from its own seeded stream.
#[allow(clippy::too_many_arguments)]
fn run_chunk(
    circuit: &Circuit,
    gens: &[Option<BiasedBits>],
    sampler: &InputSampler,
    outputs: &[usize],
    config: &MonteCarloConfig,
    blocks: u64,
    scratch: &mut Scratch,
    chunk: usize,
) -> FaultCounts {
    let chunk = chunk as u64;
    let first = chunk * CHUNK_BLOCKS;
    let last = (first + CHUNK_BLOCKS).min(blocks);
    let mut rng = SmallRng::seed_from_u64(chunk_seed(config.seed, chunk));
    let mut counts = FaultCounts::new(
        outputs.len(),
        config.joint_pairs.len(),
        config.track_nodes.then(|| circuit.len()),
    );
    let Scratch {
        clean,
        noisy,
        masks,
    } = scratch;

    for _ in first..last {
        sampler.fill(clean, &mut rng);
        clean.propagate(circuit);
        noisy.copy_from(clean);
        for (m, g) in masks.iter_mut().zip(gens) {
            *m = g.as_ref().map_or(0, |g| g.next_word(&mut rng));
        }
        noisy.propagate_with_flips(circuit, masks);

        let mut any = 0u64;
        for (k, &oidx) in outputs.iter().enumerate() {
            let diff = clean.words()[oidx] ^ noisy.words()[oidx];
            counts.out_err[k] += u64::from(diff.count_ones());
            any |= diff;
        }
        counts.any_err += u64::from(any.count_ones());
        for (j, &(a, b)) in config.joint_pairs.iter().enumerate() {
            let da = clean.words()[outputs[a]] ^ noisy.words()[outputs[a]];
            let db = clean.words()[outputs[b]] ^ noisy.words()[outputs[b]];
            counts.joint_err[j] += u64::from((da & db).count_ones());
        }
        if let Some(stats) = counts.node_stats.as_mut() {
            for i in 0..circuit.len() {
                stats.accumulate(i, clean.words()[i], noisy.words()[i]);
            }
        }
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_seeds_are_decorrelated_and_stable() {
        let a = chunk_seed(7, 0);
        let b = chunk_seed(7, 1);
        let c = chunk_seed(8, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        // Stability: the derivation is a protocol constant; changing it
        // changes every archived Monte Carlo number.
        assert_eq!(chunk_seed(0, 0), chunk_seed(0, 0));
        assert_ne!(chunk_seed(0, 0), 0);
    }

    #[test]
    fn chunk_constants_are_consistent() {
        assert_eq!(CHUNK_PATTERNS, CHUNK_BLOCKS * 64);
    }
}
