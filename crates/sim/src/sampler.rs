//! Biased input-pattern sampling.
//!
//! The packed estimators default to the uniform input distribution (every
//! input is 1 with probability ½ — the paper's setting). [`InputSampler`]
//! generalizes this to independent per-input biases, using the same
//! binary-expansion trick as the fault-mask generator, so all sampling
//! backends (Monte Carlo, signal probabilities, weight vectors,
//! observabilities) support non-uniform input statistics.

use crate::bits::{BiasedBits, DEFAULT_RESOLUTION};
use crate::packed::PackedSim;
use rand::RngCore;

/// Draws 64-pattern input words under independent per-input biases.
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// use relogic_netlist::Circuit;
/// use relogic_sim::{InputSampler, PackedSim};
///
/// let mut c = Circuit::new("t");
/// let a = c.add_input("a");
/// c.add_output("y", a);
///
/// let sampler = InputSampler::independent(&[0.9]);
/// let mut sim = PackedSim::new(&c);
/// let mut rng = rand::rngs::SmallRng::seed_from_u64(1);
/// let mut ones = 0u32;
/// for _ in 0..256 {
///     sampler.fill(&mut sim, &mut rng);
///     ones += sim.node_word(a).count_ones();
/// }
/// let mean = f64::from(ones) / (256.0 * 64.0);
/// assert!((mean - 0.9).abs() < 0.02);
/// ```
#[derive(Clone, Debug)]
pub struct InputSampler {
    /// One generator per input position; `None` means unbiased (p = ½),
    /// which costs a single RNG word.
    gens: Vec<Option<BiasedBits>>,
}

impl InputSampler {
    /// Uniform sampler over `inputs` inputs (every bias ½).
    #[must_use]
    pub fn uniform(inputs: usize) -> Self {
        InputSampler {
            gens: vec![None; inputs],
        }
    }

    /// Independent per-input biases: input `i` is 1 with probability
    /// `probs[i]`.
    ///
    /// # Panics
    ///
    /// Panics if any probability is outside `[0, 1]`.
    #[must_use]
    pub fn independent(probs: &[f64]) -> Self {
        InputSampler {
            gens: probs
                .iter()
                .map(|&p| {
                    if (p - 0.5).abs() < f64::EPSILON {
                        None
                    } else {
                        Some(BiasedBits::new(p, DEFAULT_RESOLUTION))
                    }
                })
                .collect(),
        }
    }

    /// Number of inputs covered.
    #[must_use]
    pub fn len(&self) -> usize {
        self.gens.len()
    }

    /// Returns `true` if the sampler covers no inputs.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.gens.is_empty()
    }

    /// Returns `true` if every input is unbiased.
    #[must_use]
    pub fn is_uniform(&self) -> bool {
        self.gens.iter().all(Option::is_none)
    }

    /// Fills the simulator's input words with one sampled block.
    ///
    /// # Panics
    ///
    /// Panics if the simulator's circuit has a different input count.
    pub fn fill<R: RngCore + ?Sized>(&self, sim: &mut PackedSim, rng: &mut R) {
        for (pos, gen) in self.gens.iter().enumerate() {
            let word = match gen {
                None => rng.next_u64(),
                Some(g) => g.next_word(rng),
            };
            sim.set_input_word(pos, word);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use relogic_netlist::Circuit;

    fn two_input_circuit() -> Circuit {
        let mut c = Circuit::new("t");
        let a = c.add_input("a");
        let b = c.add_input("b");
        let g = c.and([a, b]);
        c.add_output("y", g);
        c
    }

    #[test]
    fn uniform_sampler_is_unbiased() {
        let c = two_input_circuit();
        let sampler = InputSampler::uniform(2);
        assert!(sampler.is_uniform());
        assert_eq!(sampler.len(), 2);
        let mut sim = PackedSim::new(&c);
        let mut rng = SmallRng::seed_from_u64(2);
        let mut ones = 0u64;
        for _ in 0..4096 {
            sampler.fill(&mut sim, &mut rng);
            ones += u64::from(sim.node_word(c.inputs()[0]).count_ones());
        }
        #[allow(clippy::cast_precision_loss)]
        let mean = ones as f64 / (4096.0 * 64.0);
        assert!((mean - 0.5).abs() < 0.01);
    }

    #[test]
    fn biased_sampler_hits_targets() {
        let c = two_input_circuit();
        let sampler = InputSampler::independent(&[0.2, 0.8]);
        assert!(!sampler.is_uniform());
        let mut sim = PackedSim::new(&c);
        let mut rng = SmallRng::seed_from_u64(3);
        let mut ones = [0u64; 2];
        for _ in 0..8192 {
            sampler.fill(&mut sim, &mut rng);
            for (k, &id) in c.inputs().iter().enumerate() {
                ones[k] += u64::from(sim.node_word(id).count_ones());
            }
        }
        #[allow(clippy::cast_precision_loss)]
        let means: Vec<f64> = ones.iter().map(|&o| o as f64 / (8192.0 * 64.0)).collect();
        assert!((means[0] - 0.2).abs() < 0.01, "{means:?}");
        assert!((means[1] - 0.8).abs() < 0.01, "{means:?}");
    }

    #[test]
    fn gate_statistics_follow_bias() {
        // AND of (0.9, 0.9)-biased inputs is 1 with probability 0.81.
        let c = two_input_circuit();
        let sampler = InputSampler::independent(&[0.9, 0.9]);
        let mut sim = PackedSim::new(&c);
        let mut rng = SmallRng::seed_from_u64(4);
        let g = c.outputs()[0].node();
        let mut ones = 0u64;
        for _ in 0..8192 {
            sampler.fill(&mut sim, &mut rng);
            sim.propagate(&c);
            ones += u64::from(sim.node_word(g).count_ones());
        }
        #[allow(clippy::cast_precision_loss)]
        let mean = ones as f64 / (8192.0 * 64.0);
        assert!((mean - 0.81).abs() < 0.01, "{mean}");
    }

    #[test]
    #[should_panic(expected = "out of [0,1]")]
    fn invalid_bias_rejected() {
        let _ = InputSampler::independent(&[1.5]);
    }
}
