//! Compilation of a levelized [`Circuit`] into a flat instruction tape.
//!
//! The graph-walking simulators chase `NodeId` pointers through the node
//! table for every pattern block. [`CircuitTape`] lowers the circuit once
//! into a structure-of-arrays form the execution kernels can stream:
//!
//! * **Slots** — every node gets a dense *slot* index; slots are ordered by
//!   `(level, NodeId)`, so a single forward pass over the slot axis visits
//!   nodes in topological order and every fanin slot precedes its reader.
//! * **Ops** — one contiguous `GateKind` array, one flattened fanin-slot
//!   array with CSR-style offsets. No per-node heap indirection remains at
//!   execution time.
//! * **Levels** — `level_starts` records where each level's slot range
//!   begins, so kernels that want to process level-by-level (the ε-grid
//!   sweep engine) can do so without re-deriving structure.
//!
//! The tape is pure structure: it carries no ε values and no RNG state, so
//! one compiled tape serves every Monte Carlo configuration and every
//! sweep grid over the same netlist. That makes it the natural unit for
//! the serve artifact cache (see `projected_heap_bytes`).

use relogic_netlist::{Circuit, GateKind};

/// A circuit lowered to a flat, slot-indexed instruction tape.
///
/// # Examples
///
/// ```
/// use relogic_netlist::Circuit;
/// use relogic_sim::CircuitTape;
///
/// let mut c = Circuit::new("t");
/// let a = c.add_input("a");
/// let b = c.add_input("b");
/// let g = c.xor([a, b]);
/// c.add_output("y", g);
///
/// let tape = CircuitTape::compile(&c);
/// assert_eq!(tape.n_slots(), 3);
/// assert_eq!(tape.levels(), 2); // sources, then the XOR
/// ```
#[derive(Clone, Debug)]
pub struct CircuitTape {
    /// Slot of each node, indexed by `NodeId::index`.
    slot_of_node: Vec<u32>,
    /// Node index of each slot (the inverse permutation).
    node_of_slot: Vec<u32>,
    /// Op of each slot.
    kinds: Vec<GateKind>,
    /// CSR offsets into `fanin_slots`, length `n_slots + 1`.
    fanin_start: Vec<u32>,
    /// Flattened fanin slots; every entry is `<` the slot that reads it.
    fanin_slots: Vec<u32>,
    /// First slot of each level, length `levels + 1`.
    level_starts: Vec<u32>,
    /// Slot of each primary input, in input-position order.
    input_slots: Vec<u32>,
    /// Slot of each primary output, in declaration order.
    output_slots: Vec<u32>,
}

impl CircuitTape {
    /// Lowers `circuit` into a tape.
    ///
    /// # Panics
    ///
    /// Panics if the circuit has more than `u32::MAX` nodes or fanin edges
    /// (far beyond any netlist this crate targets).
    #[must_use]
    pub fn compile(circuit: &Circuit) -> CircuitTape {
        let n = circuit.len();
        assert!(
            u32::try_from(n).is_ok(),
            "circuit has more than u32::MAX nodes"
        );
        let lv = relogic_netlist::structure::levels(circuit);
        let max_level = lv.iter().copied().max().unwrap_or(0);

        // Counting sort by level keeps slot order stable in NodeId within a
        // level, which makes the layout deterministic for a given netlist.
        let levels = max_level as usize + 1;
        let mut counts = vec![0u32; levels + 1];
        for &l in &lv {
            counts[l as usize + 1] += 1;
        }
        for i in 0..levels {
            counts[i + 1] += counts[i];
        }
        let level_starts = counts.clone();
        let mut slot_of_node = vec![0u32; n];
        let mut node_of_slot = vec![0u32; n];
        for (i, &l) in lv.iter().enumerate() {
            let slot = counts[l as usize];
            counts[l as usize] += 1;
            slot_of_node[i] = slot;
            node_of_slot[slot as usize] = i as u32;
        }

        let mut kinds = Vec::with_capacity(n);
        let mut fanin_start = Vec::with_capacity(n + 1);
        let mut fanin_slots = Vec::new();
        fanin_start.push(0);
        for &node_idx in &node_of_slot {
            let node = circuit.node(relogic_netlist::NodeId::from_index(node_idx as usize));
            kinds.push(node.kind());
            for f in node.fanins() {
                fanin_slots.push(slot_of_node[f.index()]);
            }
            assert!(
                u32::try_from(fanin_slots.len()).is_ok(),
                "circuit has more than u32::MAX fanin edges"
            );
            fanin_start.push(fanin_slots.len() as u32);
        }

        let input_slots = circuit
            .inputs()
            .iter()
            .map(|id| slot_of_node[id.index()])
            .collect();
        let output_slots = circuit
            .outputs()
            .iter()
            .map(|o| slot_of_node[o.node().index()])
            .collect();

        CircuitTape {
            slot_of_node,
            node_of_slot,
            kinds,
            fanin_start,
            fanin_slots,
            level_starts,
            input_slots,
            output_slots,
        }
    }

    /// Number of slots (= nodes in the source circuit).
    #[must_use]
    pub fn n_slots(&self) -> usize {
        self.kinds.len()
    }

    /// Number of levels (sources are level 0).
    #[must_use]
    pub fn levels(&self) -> usize {
        self.level_starts.len() - 1
    }

    /// The slot holding node `i` (by `NodeId::index`).
    #[must_use]
    pub fn slot_of_node(&self, i: usize) -> usize {
        self.slot_of_node[i] as usize
    }

    /// The node index stored in `slot`.
    #[must_use]
    pub fn node_of_slot(&self, slot: usize) -> usize {
        self.node_of_slot[slot] as usize
    }

    /// The op executed by `slot`.
    #[must_use]
    pub fn kind(&self, slot: usize) -> GateKind {
        self.kinds[slot]
    }

    /// The fanin slots read by `slot` (all strictly less than `slot`).
    #[must_use]
    pub fn fanins(&self, slot: usize) -> &[u32] {
        &self.fanin_slots[self.fanin_start[slot] as usize..self.fanin_start[slot + 1] as usize]
    }

    /// First slot of each level, with a final sentinel equal to
    /// [`CircuitTape::n_slots`].
    #[must_use]
    pub fn level_starts(&self) -> &[u32] {
        &self.level_starts
    }

    /// Slot of each primary input, in input-position order.
    #[must_use]
    pub fn input_slots(&self) -> &[u32] {
        &self.input_slots
    }

    /// Slot of each primary output, in declaration order.
    #[must_use]
    pub fn output_slots(&self) -> &[u32] {
        &self.output_slots
    }

    /// Borrows every internal array of the tape, in the documented field
    /// order. The persistent artifact store serializes exactly these; the
    /// inverse is [`CircuitTape::from_parts`].
    #[must_use]
    pub fn parts(&self) -> TapeParts<'_> {
        TapeParts {
            slot_of_node: &self.slot_of_node,
            node_of_slot: &self.node_of_slot,
            kinds: &self.kinds,
            fanin_start: &self.fanin_start,
            fanin_slots: &self.fanin_slots,
            level_starts: &self.level_starts,
            input_slots: &self.input_slots,
            output_slots: &self.output_slots,
        }
    }

    /// Rebuilds a tape from deserialized arrays, validating every
    /// structural invariant [`CircuitTape::compile`] guarantees: inverse
    /// slot/node permutations, CSR offsets that are monotonic and bounded,
    /// fanin slots strictly below their reader, monotonic level starts
    /// covering `[0, n]`, and in-range I/O slots. Deserializers sit behind
    /// a checksum, but a hash collision must degrade into this error —
    /// never a panic or a structurally impossible tape.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violated
    /// invariant.
    pub fn from_parts(parts: OwnedTapeParts) -> Result<CircuitTape, String> {
        let OwnedTapeParts {
            slot_of_node,
            node_of_slot,
            kinds,
            fanin_start,
            fanin_slots,
            level_starts,
            input_slots,
            output_slots,
        } = parts;
        let n = kinds.len();
        if slot_of_node.len() != n || node_of_slot.len() != n {
            return Err(format!(
                "slot maps ({}, {}) disagree with op count {n}",
                slot_of_node.len(),
                node_of_slot.len()
            ));
        }
        for (i, &slot) in slot_of_node.iter().enumerate() {
            let inverse = node_of_slot.get(slot as usize).copied();
            if inverse != Some(u32::try_from(i).map_err(|_| "node index overflow".to_owned())?) {
                return Err(format!("slot maps are not inverse at node {i}"));
            }
        }
        if fanin_start.len() != n + 1 || fanin_start.first() != Some(&0) {
            return Err("fanin offsets malformed".to_owned());
        }
        if fanin_start.last().copied().unwrap_or(0) as usize != fanin_slots.len() {
            return Err("fanin offsets disagree with edge count".to_owned());
        }
        for (slot, w) in fanin_start.windows(2).enumerate() {
            if w[0] > w[1] || w[1] as usize > fanin_slots.len() {
                return Err(format!("fanin offsets malformed at slot {slot}"));
            }
            if fanin_slots[w[0] as usize..w[1] as usize]
                .iter()
                .any(|&f| f as usize >= slot)
            {
                return Err(format!("fanin slot >= reader at slot {slot}"));
            }
        }
        if level_starts.first() != Some(&0)
            || level_starts.last().copied().unwrap_or(u32::MAX) as usize != n
            || level_starts.windows(2).any(|w| w[0] > w[1])
        {
            return Err("level starts malformed".to_owned());
        }
        if input_slots.iter().chain(&output_slots).any(|&s| {
            s as usize >= n || (input_slots.contains(&s) && kinds[s as usize] != GateKind::Input)
        }) {
            return Err("i/o slot out of range or not matching its kind".to_owned());
        }
        Ok(CircuitTape {
            slot_of_node,
            node_of_slot,
            kinds,
            fanin_start,
            fanin_slots,
            level_starts,
            input_slots,
            output_slots,
        })
    }

    /// Projected heap footprint of the tape compiled from `circuit`,
    /// computable without compiling. Used by the serve artifact cache to
    /// charge entries up front.
    #[must_use]
    pub fn projected_heap_bytes(circuit: &Circuit) -> usize {
        let n = circuit.len();
        let edges: usize = circuit.iter().map(|(_, node)| node.fanins().len()).sum();
        let lv = relogic_netlist::structure::levels(circuit);
        let levels = lv.iter().copied().max().unwrap_or(0) as usize + 1;
        // slot_of_node + node_of_slot + fanin_start + level_starts + edges
        // + I/O slot maps, all u32-sized, plus the op array.
        let index_words = 2 * n
            + (n + 1)
            + (levels + 1)
            + edges
            + circuit.input_count()
            + circuit.outputs().len();
        index_words * 4 + n * std::mem::size_of::<GateKind>()
    }

    /// Measured heap footprint of this tape (cross-checks the projection).
    #[must_use]
    pub fn approx_heap_bytes(&self) -> usize {
        (self.slot_of_node.len()
            + self.node_of_slot.len()
            + self.fanin_start.len()
            + self.fanin_slots.len()
            + self.level_starts.len()
            + self.input_slots.len()
            + self.output_slots.len())
            * 4
            + self.kinds.len() * std::mem::size_of::<GateKind>()
    }
}

/// Borrowed view of every internal tape array, for serialization.
#[derive(Clone, Copy, Debug)]
pub struct TapeParts<'a> {
    /// Slot of each node, indexed by `NodeId::index`.
    pub slot_of_node: &'a [u32],
    /// Node index of each slot (the inverse permutation).
    pub node_of_slot: &'a [u32],
    /// Op of each slot.
    pub kinds: &'a [GateKind],
    /// CSR offsets into `fanin_slots`, length `n_slots + 1`.
    pub fanin_start: &'a [u32],
    /// Flattened fanin slots; every entry is `<` the slot that reads it.
    pub fanin_slots: &'a [u32],
    /// First slot of each level, length `levels + 1`.
    pub level_starts: &'a [u32],
    /// Slot of each primary input, in input-position order.
    pub input_slots: &'a [u32],
    /// Slot of each primary output, in declaration order.
    pub output_slots: &'a [u32],
}

/// Owned tape arrays handed to [`CircuitTape::from_parts`] by a
/// deserializer. Field meanings match [`TapeParts`].
#[derive(Clone, Debug, Default)]
pub struct OwnedTapeParts {
    /// Slot of each node, indexed by `NodeId::index`.
    pub slot_of_node: Vec<u32>,
    /// Node index of each slot (the inverse permutation).
    pub node_of_slot: Vec<u32>,
    /// Op of each slot.
    pub kinds: Vec<GateKind>,
    /// CSR offsets into `fanin_slots`, length `n_slots + 1`.
    pub fanin_start: Vec<u32>,
    /// Flattened fanin slots; every entry is `<` the slot that reads it.
    pub fanin_slots: Vec<u32>,
    /// First slot of each level, length `levels + 1`.
    pub level_starts: Vec<u32>,
    /// Slot of each primary input, in input-position order.
    pub input_slots: Vec<u32>,
    /// Slot of each primary output, in declaration order.
    pub output_slots: Vec<u32>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full_adder() -> Circuit {
        let mut c = Circuit::new("fa");
        let a = c.add_input("a");
        let b = c.add_input("b");
        let cin = c.add_input("cin");
        let s1 = c.xor([a, b]);
        let sum = c.xor([s1, cin]);
        let c1 = c.and([a, b]);
        let c2 = c.and([s1, cin]);
        let cout = c.or([c1, c2]);
        c.add_output("sum", sum);
        c.add_output("cout", cout);
        c
    }

    #[test]
    fn slots_are_topologically_ordered() {
        let c = full_adder();
        let tape = CircuitTape::compile(&c);
        assert_eq!(tape.n_slots(), c.len());
        for slot in 0..tape.n_slots() {
            for &f in tape.fanins(slot) {
                assert!((f as usize) < slot, "fanin slot {f} >= reader {slot}");
            }
        }
    }

    #[test]
    fn slot_and_node_maps_are_inverse() {
        let c = full_adder();
        let tape = CircuitTape::compile(&c);
        for i in 0..c.len() {
            assert_eq!(tape.node_of_slot(tape.slot_of_node(i)), i);
        }
    }

    #[test]
    fn levels_group_contiguously() {
        let c = full_adder();
        let tape = CircuitTape::compile(&c);
        let starts = tape.level_starts();
        assert_eq!(starts[0], 0);
        assert_eq!(*starts.last().unwrap() as usize, tape.n_slots());
        // Sources fill level 0.
        assert_eq!(starts[1], 3);
        for w in starts.windows(2) {
            assert!(w[0] <= w[1]);
        }
    }

    #[test]
    fn io_slots_match_circuit_declarations() {
        let c = full_adder();
        let tape = CircuitTape::compile(&c);
        assert_eq!(tape.input_slots().len(), 3);
        assert_eq!(tape.output_slots().len(), 2);
        for (pos, &id) in c.inputs().iter().enumerate() {
            assert_eq!(
                tape.input_slots()[pos] as usize,
                tape.slot_of_node(id.index())
            );
            assert_eq!(tape.kind(tape.input_slots()[pos] as usize), GateKind::Input);
        }
        for (k, o) in c.outputs().iter().enumerate() {
            assert_eq!(
                tape.output_slots()[k] as usize,
                tape.slot_of_node(o.node().index())
            );
        }
    }

    fn owned_parts(tape: &CircuitTape) -> OwnedTapeParts {
        let p = tape.parts();
        OwnedTapeParts {
            slot_of_node: p.slot_of_node.to_vec(),
            node_of_slot: p.node_of_slot.to_vec(),
            kinds: p.kinds.to_vec(),
            fanin_start: p.fanin_start.to_vec(),
            fanin_slots: p.fanin_slots.to_vec(),
            level_starts: p.level_starts.to_vec(),
            input_slots: p.input_slots.to_vec(),
            output_slots: p.output_slots.to_vec(),
        }
    }

    #[test]
    fn parts_round_trip_reproduces_the_tape() {
        let c = full_adder();
        let tape = CircuitTape::compile(&c);
        let rebuilt = CircuitTape::from_parts(owned_parts(&tape)).unwrap();
        assert_eq!(format!("{tape:?}"), format!("{rebuilt:?}"));
    }

    #[test]
    fn from_parts_rejects_structural_corruption() {
        let c = full_adder();
        let tape = CircuitTape::compile(&c);

        let mut p = owned_parts(&tape);
        p.node_of_slot.swap(0, 1); // break the inverse permutation
        assert!(CircuitTape::from_parts(p).is_err());

        let mut p = owned_parts(&tape);
        let last = p.fanin_slots.len() - 1;
        p.fanin_slots[last] = u32::MAX; // fanin >= reader
        assert!(CircuitTape::from_parts(p).is_err());

        let mut p = owned_parts(&tape);
        p.fanin_start[1] = u32::MAX; // non-monotonic CSR offsets
        assert!(CircuitTape::from_parts(p).is_err());

        let mut p = owned_parts(&tape);
        p.level_starts.pop(); // level starts no longer cover [0, n]
        assert!(CircuitTape::from_parts(p).is_err());

        let mut p = owned_parts(&tape);
        p.output_slots[0] = u32::MAX; // out-of-range output slot
        assert!(CircuitTape::from_parts(p).is_err());

        let mut p = owned_parts(&tape);
        p.kinds.pop(); // length mismatch across arrays
        assert!(CircuitTape::from_parts(p).is_err());
    }

    #[test]
    fn projection_matches_measured_footprint() {
        let c = full_adder();
        let tape = CircuitTape::compile(&c);
        assert_eq!(
            CircuitTape::projected_heap_bytes(&c),
            tape.approx_heap_bytes()
        );
    }
}
