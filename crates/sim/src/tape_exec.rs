//! Wide multi-word Monte Carlo execution over a compiled [`CircuitTape`].
//!
//! One tape traversal evaluates `64 × N` patterns: each slot carries `N`
//! consecutive 64-pattern blocks as `u64` lanes, and the clean and noisy
//! circuits are computed in the same pass. Fault masks are produced by a
//! flat pre-pass over the noisy slots ([`TapeRun::fill_masks`]) that
//! batches [`MASK_BATCH_WORDS`] independent words per comparator call, so
//! the latency-bound RNG pipeline stays full at every lane width.
//!
//! # Determinism contract
//!
//! The tape engine uses a *position-based* (counter-based) RNG protocol:
//! every random word is a pure function of
//!
//! ```text
//! (run seed, global block index, node index, stream, digit)
//! ```
//!
//! mixed through a SplitMix64 finalizer ([`mix64`]). No RNG state is ever
//! advanced, so the estimate is **bit-identical for every thread count and
//! every lane width by construction** — work distribution and lane
//! grouping cannot change which word any (block, node) cell draws. Words
//! are keyed by *node* index (not slot), so the numbers are also invariant
//! under tape-layout changes.
//!
//! Biased Bernoulli(ε) words realize the exact same quantized probability
//! as [`BiasedBits`] (`⌊ε·2^r⌉ / 2^r`), but through an MSB-first bitsliced
//! comparison ([`biased_word`]) that draws one uniform *digit plane* at a
//! time and stops as soon as all 64 lanes have decided — ~2 planes in
//! expectation plus one per resolved lane-set, instead of one word per
//! resolution digit. This is where most of the tape engine's Monte Carlo
//! speedup comes from.
//!
//! Because the stream protocol differs from the legacy graph engine's
//! sequential xoshiro stream, tape and graph estimates of the same
//! configuration are *statistically* identical (same circuit, same exact
//! quantized probabilities) but not bitwise equal. Each engine is
//! individually reproducible from its seed.

use crate::bits::DEFAULT_RESOLUTION;
use crate::cancel::{CancelToken, Cancelled};
use crate::exec::ChunkExecutor;
use crate::monte_carlo::{finalize_counts, validate_run, MonteCarloConfig, ReliabilityEstimate};
use crate::parallel::{FaultCounts, CHUNK_BLOCKS};
use crate::tape::CircuitTape;
use crate::{BiasedBits, SimError};
use relogic_netlist::{Circuit, GateKind};

/// Default lane width of the tape Monte Carlo kernel (`u64×8` = 512
/// patterns per tape step). Lane width never changes the estimate — only
/// throughput; 8 lanes keeps the biased-comparator pipeline full on
/// current x86-64 cores.
pub const DEFAULT_LANES: usize = 8;

/// Stream discriminant for input-sampling words.
const STREAM_INPUT: u64 = 0;
/// Stream discriminant for fault-mask words.
const STREAM_MASK: u64 = 1;

/// 2⁶⁴/φ, the SplitMix64 stream increment.
const PHI: u64 = 0x9E37_79B9_7F4A_7C15;

/// SplitMix64's output finalizer: a bijective avalanche mix.
#[inline(always)]
fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Base key of one `(block, node, stream)` cell under `seed`. Digit `t` of
/// the cell's word sequence is `mix64(base + t·φ⁻¹·2⁶⁴)` (SplitMix64 with
/// the base as its state).
///
/// A single weighted sum plus one `mix64` suffices here: every *consumed*
/// word passes through [`digit_word`]'s second `mix64`, so structured
/// collisions in the base (two cells whose raw sums differ by a small
/// multiple of φ⁻¹·2⁶⁴) cannot produce correlated output words. The mask
/// kernel is latency-bound on exactly this function, so the second mix is
/// real throughput.
#[inline(always)]
fn cell_key(seed: u64, block: u64, node: u64, stream: u64) -> u64 {
    let lane = block
        .wrapping_mul(PHI)
        .wrapping_add(node.wrapping_mul(0xC2B2_AE3D_27D4_EB4F))
        .wrapping_add(stream.wrapping_mul(0x1656_67B1_9E37_79F9));
    mix64(seed ^ lane)
}

/// Digit plane `t` of a cell's word sequence.
#[inline(always)]
fn digit_word(base: u64, t: u32) -> u64 {
    mix64(base.wrapping_add(u64::from(t).wrapping_mul(PHI)))
}

/// One 64-lane Bernoulli(`quantized`/2^`resolution`) word from a cell key.
///
/// Bit `ℓ` is set iff the `resolution`-digit uniform binary fraction of
/// lane `ℓ` (digit plane `t` supplies digit `t`, most significant first)
/// is strictly less than the quantized probability — an exact integer
/// comparison `U < q`, bitsliced across all 64 lanes. The loop exits when
/// every lane has decided (`eq == 0`, ~2 extra planes in expectation) and
/// never visits digits below `q`'s lowest set bit (they cannot flip the
/// comparison).
#[cfg_attr(not(test), allow(dead_code))] // reference for `biased_group`, exercised by tests
#[inline(always)]
fn biased_word(base: u64, quantized: u64, resolution: u32) -> u64 {
    if quantized == 0 {
        return 0;
    }
    if quantized >= 1u64 << resolution {
        return u64::MAX;
    }
    let planes = resolution - quantized.trailing_zeros();
    let mut lt = 0u64;
    let mut eq = u64::MAX;
    for t in 0..planes {
        let u = digit_word(base, t);
        if quantized >> (resolution - 1 - t) & 1 == 1 {
            lt |= eq & !u;
            eq &= u;
        } else {
            eq &= !u;
        }
        if eq == 0 {
            break;
        }
    }
    lt
}

/// Digit planes the group kernel runs unconditionally before it starts
/// checking for early exit. With `64·W` comparison lanes in flight the
/// expected last-decider sits near `log₂(64·W) ≈ 10–12` planes, so
/// branching earlier than this only costs mispredictions; the unconditional
/// prefix keeps the hot loop branch-free and lets the per-plane multiplies
/// from every lane pipeline.
const UNCHECKED_PLANES: u32 = 12;

/// [`biased_word`] over `W` independent words at once, plane-major: each
/// digit plane draws `W` words (no serial dependency, so the multiplies
/// pipeline and vectorize) and the early exit is decided once per plane
/// for the whole group, after an unconditional [`UNCHECKED_PLANES`]-plane
/// prefix. `W` may span several lane groups — the mask pre-pass batches
/// `16 / L` slots per call so narrow lane widths still fill the machine's
/// vector units.
///
/// Every update to an already-decided word is a no-op (`eq = 0` freezes
/// it, and a plane with digit 0 only clears `eq` bits), so `out[l]` is
/// exactly `biased_word(bases[l], …)` regardless of grouping — the group
/// formulation cannot perturb lane-width identity.
#[inline(always)]
fn biased_group<const W: usize>(
    bases: &[u64; W],
    quantized: u64,
    resolution: u32,
    out: &mut [u64; W],
) {
    if quantized == 0 {
        *out = [0; W];
        return;
    }
    if quantized >= 1u64 << resolution {
        *out = [u64::MAX; W];
        return;
    }
    *out = [0; W];
    let mut eqs = [u64::MAX; W];
    let planes = resolution - quantized.trailing_zeros();
    let prefix = planes.min(UNCHECKED_PLANES);
    for t in 0..prefix {
        // Branch-free digit handling: `qb` is all-ones iff digit `t` of
        // the quantized probability is 1.
        let qb = 0u64.wrapping_sub(quantized >> (resolution - 1 - t) & 1);
        for l in 0..W {
            let u = digit_word(bases[l], t);
            out[l] |= eqs[l] & !u & qb;
            eqs[l] &= u ^ !qb;
        }
    }
    let mut alive = 0u64;
    for &eq in &eqs {
        alive |= eq;
    }
    if alive == 0 {
        return;
    }
    for t in prefix..planes {
        let qb = 0u64.wrapping_sub(quantized >> (resolution - 1 - t) & 1);
        let mut alive = 0u64;
        for l in 0..W {
            let u = digit_word(bases[l], t);
            out[l] |= eqs[l] & !u & qb;
            eqs[l] &= u ^ !qb;
            alive |= eqs[l];
        }
        if alive == 0 {
            break;
        }
    }
}

/// Mask pre-pass batch width: every `biased_group` call in the pre-pass
/// spans 16 words (`16 / L` slots), whatever the kernel lane width. The
/// plane loop is latency-bound on `mix64`, so narrow lane widths must
/// still present enough independent words per plane to saturate the
/// vector units.
const MASK_BATCH_WORDS: usize = 16;

/// Runtime detection for the tape kernel's AVX-512 fast path.
///
/// The kernel itself is plain safe Rust; when the host supports the
/// AVX-512 subsets below, chunks run through an `#[target_feature]`
/// clone of the same source so the autovectorizer can use 64-bit lane
/// multiplies (`vpmullq`, AVX-512DQ; the VL subset unlocks its 256-bit
/// form, which pipelines better than the 512-bit one on double-pumped
/// implementations). Identical integer dataflow either way, so detection
/// can never change an estimate.
#[cfg(target_arch = "x86_64")]
fn avx512_available() -> bool {
    is_x86_feature_detected!("avx512f")
        && is_x86_feature_detected!("avx512dq")
        && is_x86_feature_detected!("avx512vl")
}

/// All noisy slots sharing one quantized fault probability, in slot order.
/// The mask pre-pass walks classes so each wide `biased_group` call has a
/// single `quantized` value across its whole batch.
struct MaskClass {
    quantized: u64,
    /// `(slot, hoisted node term of the slot's cell key)` pairs.
    slots: Vec<(u32, u64)>,
}

/// Elementwise unary gate kernel over one slot's lane window.
#[inline(always)]
fn zip1(dst: &mut [u64], a: &[u64], f: impl Fn(u64) -> u64) {
    for (d, &x) in dst.iter_mut().zip(a) {
        *d = f(x);
    }
}

/// Elementwise binary gate kernel over one slot's lane window. The zip
/// bounds the loop by slice lengths, so the body compiles to straight
/// vector ops.
#[inline(always)]
fn zip2(dst: &mut [u64], a: &[u64], b: &[u64], f: impl Fn(u64, u64) -> u64) {
    for ((d, &x), &y) in dst.iter_mut().zip(a).zip(b) {
        *d = f(x, y);
    }
}

/// Everything a worker needs to simulate chunks of a run: the tape plus
/// per-slot quantized probabilities and the tally configuration.
struct TapeRun<'a> {
    tape: &'a CircuitTape,
    /// Per-slot quantized fault probability (0 = noise-free).
    mask_q: Vec<u64>,
    /// Noisy slots grouped by quantized probability, for the mask
    /// pre-pass.
    mask_classes: Vec<MaskClass>,
    /// Whether the run uses the AVX-512 paths: the hand-vectorized mask
    /// comparator and the AVX-512-compiled kernel clone (detected once
    /// per run; every path emits identical words).
    simd: bool,
    /// Fault-mask resolution (binary digits).
    resolution: u32,
    /// Per-slot quantized input bias; `None` = unbiased (p = ½, one word).
    /// Only consulted at `Input` slots.
    sample_q: Vec<Option<u64>>,
    /// Output slots paired with their node-declared tally index.
    output_slots: Vec<usize>,
    joint_pairs: &'a [(usize, usize)],
    track_nodes: bool,
    seed: u64,
    blocks: u64,
}

/// Per-worker scratch. `vals` interleaves the clean and noisy planes as
/// one `n_slots × 2L` buffer — lanes `0..L` of a slot are the clean
/// blocks, lanes `L..2L` the matching noisy blocks — so a single gate
/// loop over `2L` lanes evaluates both circuits at double vector width;
/// only the trailing mask XOR distinguishes them. `masks` is the
/// pre-pass mask plane, `n_slots × L`, written (and read) only at slots
/// with a nonzero quantized probability, so it never needs re-zeroing.
struct TapeScratch {
    vals: Vec<u64>,
    masks: Vec<u64>,
}

impl TapeScratch {
    fn new(n_slots: usize, lanes: usize) -> TapeScratch {
        TapeScratch {
            vals: vec![0u64; n_slots * lanes * 2],
            masks: vec![0u64; n_slots * lanes],
        }
    }
}

impl TapeRun<'_> {
    fn counts(&self) -> FaultCounts {
        FaultCounts::new(
            self.output_slots.len(),
            self.joint_pairs.len(),
            self.track_nodes.then(|| self.tape.n_slots()),
        )
    }

    fn run<const L: usize>(
        &self,
        threads: usize,
        cancel: &CancelToken,
    ) -> Result<FaultCounts, Cancelled> {
        let chunks = usize::try_from(self.blocks.div_ceil(CHUNK_BLOCKS)).unwrap_or(usize::MAX);
        let executor = ChunkExecutor::new(threads);
        let n_slots = self.tape.n_slots();
        let (tallies, _) = executor.try_map_chunks_with_state(
            chunks,
            cancel,
            "tape_chunk",
            || TapeScratch::new(n_slots, L),
            |scratch, chunk| Ok(self.run_chunk::<L>(scratch, chunk)),
        )?;
        let mut merged = self.counts();
        for tally in &tallies {
            merged.merge(tally);
        }
        Ok(merged)
    }

    /// Simulates one chunk, routing through the AVX-512-compiled clone of
    /// the kernel when the host supports it. The clone is the *same*
    /// source (`run_chunk_impl` is `#[inline(always)]`, so it and every
    /// helper it calls are recompiled inside the `#[target_feature]`
    /// wrapper); only the instruction selection differs, and the kernel
    /// is pure integer arithmetic, so the counts are identical either
    /// way.
    fn run_chunk<const L: usize>(&self, scratch: &mut TapeScratch, chunk: usize) -> FaultCounts {
        #[cfg(target_arch = "x86_64")]
        if self.simd {
            // SAFETY: `simd` is only set when `avx512_available()`
            // reported support for the required subsets.
            return unsafe { self.run_chunk_avx512::<L>(scratch, chunk) };
        }
        self.run_chunk_impl::<L>(scratch, chunk)
    }

    /// [`TapeRun::run_chunk_impl`] compiled with the AVX-512 feature set,
    /// so the gate and tally loops autovectorize at 512-bit width even in
    /// a baseline `x86-64` build.
    ///
    /// # Safety
    ///
    /// The host must support AVX-512F and AVX-512DQ.
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx512f,avx512dq,avx512vl")]
    unsafe fn run_chunk_avx512<const L: usize>(
        &self,
        scratch: &mut TapeScratch,
        chunk: usize,
    ) -> FaultCounts {
        self.run_chunk_impl::<L>(scratch, chunk)
    }

    #[inline(always)]
    fn run_chunk_impl<const L: usize>(
        &self,
        scratch: &mut TapeScratch,
        chunk: usize,
    ) -> FaultCounts {
        let first = chunk as u64 * CHUNK_BLOCKS;
        let last = (first + CHUNK_BLOCKS).min(self.blocks);
        let mut counts = self.counts();
        let mut b = first;
        while b < last {
            // Always compute a full lane group (constant trip counts keep
            // the kernel vectorizable); blocks past the budget are pure
            // functions of their index and simply go untallied.
            let live = usize::try_from(last - b).map_or(L, |g| g.min(L));
            self.compute_group::<L>(scratch, b);
            self.tally_group::<L>(scratch, live, &mut counts);
            b += live as u64;
        }
        counts
    }

    /// Generates the fault-mask plane for blocks `first_block ..
    /// first_block + L`: one `MASK_BATCH_WORDS`-wide [`biased_group`] call
    /// per `16 / L` noisy slots, walking the equal-`quantized` classes.
    /// Remainder slots fall back to an `L`-wide call, which produces the
    /// identical words (each word is a pure function of its cell key).
    #[inline(always)]
    fn fill_masks<const L: usize>(&self, masks: &mut [u64], first_block: u64) {
        let batch = MASK_BATCH_WORDS / L;
        // `cell_key`'s weighted sum separates into a per-block and a
        // per-node term; hoisting both leaves one add + one xor + one
        // `mix64` per word in the hot loop.
        let mut block_terms = [0u64; L];
        for (l, b) in block_terms.iter_mut().enumerate() {
            *b = (first_block + l as u64).wrapping_mul(PHI);
        }
        for class in &self.mask_classes {
            let q = class.quantized;
            let mut rest = class.slots.as_slice();
            while rest.len() >= batch {
                let (head, tail) = rest.split_at(batch);
                let mut bases = [0u64; MASK_BATCH_WORDS];
                for (j, &(_, nt)) in head.iter().enumerate() {
                    for l in 0..L {
                        bases[j * L + l] = mix64(self.seed ^ block_terms[l].wrapping_add(nt));
                    }
                }
                let mut out = [0u64; MASK_BATCH_WORDS];
                biased_group(&bases, q, self.resolution, &mut out);
                for (j, &(s, _)) in head.iter().enumerate() {
                    let s = s as usize;
                    masks[s * L..s * L + L].copy_from_slice(&out[j * L..j * L + L]);
                }
                rest = tail;
            }
            for &(s, nt) in rest {
                let mut bases = [0u64; L];
                for l in 0..L {
                    bases[l] = mix64(self.seed ^ block_terms[l].wrapping_add(nt));
                }
                let mut out = [0u64; L];
                biased_group(&bases, q, self.resolution, &mut out);
                let s = s as usize;
                masks[s * L..s * L + L].copy_from_slice(&out);
            }
        }
    }

    /// Evaluates blocks `first_block .. first_block + L` for every slot:
    /// mask pre-pass, then clean and noisy planes in one tape pass over
    /// the interleaved `2L`-lane value buffer. Fanin arities 1 and 2 get
    /// dedicated loops so the gate fold has a compile-time trip count in
    /// the overwhelmingly common cases.
    #[inline(always)]
    fn compute_group<const L: usize>(&self, scratch: &mut TapeScratch, first_block: u64) {
        self.fill_masks::<L>(&mut scratch.masks, first_block);
        let tape = self.tape;
        let vals = &mut scratch.vals;
        let mask_plane = &scratch.masks;
        for s in 0..tape.n_slots() {
            let out = s * 2 * L;
            match tape.kind(s) {
                GateKind::Input => {
                    let node = tape.node_of_slot(s) as u64;
                    let bases = self.bases::<L>(first_block, node, STREAM_INPUT);
                    let mut words = [0u64; L];
                    match self.sample_q[s] {
                        None => {
                            for l in 0..L {
                                words[l] = digit_word(bases[l], 0);
                            }
                        }
                        Some(p) => biased_group(&bases, p, DEFAULT_RESOLUTION, &mut words),
                    }
                    for l in 0..L {
                        vals[out + l] = words[l];
                        vals[out + L + l] = words[l];
                    }
                }
                kind => {
                    let fanins = tape.fanins(s);
                    // Reads come from slots strictly below `s` and writes
                    // go to slot `s`: splitting at the slot boundary makes
                    // that disjointness explicit and lets the fixed-width
                    // zip loops drop their bounds checks.
                    let (lo, hi) = vals.split_at_mut(out);
                    let dst = &mut hi[..2 * L];
                    let src = |f: u32| &lo[f as usize * 2 * L..][..2 * L];
                    let generic = |dst: &mut [u64]| {
                        let arity = fanins.len();
                        for (l, d) in dst.iter_mut().enumerate() {
                            *d = crate::packed::gate_word(kind, arity, |i| {
                                lo[fanins[i] as usize * 2 * L + l]
                            });
                        }
                    };
                    match *fanins {
                        [a, b] => match kind {
                            GateKind::And => zip2(dst, src(a), src(b), |x, y| x & y),
                            GateKind::Nand => zip2(dst, src(a), src(b), |x, y| !(x & y)),
                            GateKind::Or => zip2(dst, src(a), src(b), |x, y| x | y),
                            GateKind::Nor => zip2(dst, src(a), src(b), |x, y| !(x | y)),
                            GateKind::Xor => zip2(dst, src(a), src(b), |x, y| x ^ y),
                            GateKind::Xnor => zip2(dst, src(a), src(b), |x, y| !(x ^ y)),
                            _ => generic(dst),
                        },
                        [a] => match kind {
                            GateKind::Buf => dst.copy_from_slice(src(a)),
                            GateKind::Not => zip1(dst, src(a), |x| !x),
                            _ => generic(dst),
                        },
                        _ => generic(dst),
                    }
                }
            }
            if self.mask_q[s] != 0 {
                for (v, &m) in vals[out + L..out + 2 * L]
                    .iter_mut()
                    .zip(&mask_plane[s * L..s * L + L])
                {
                    *v ^= m;
                }
            }
        }
    }

    /// Cell keys of one lane group for a `(node, stream)` pair.
    #[inline(always)]
    fn bases<const L: usize>(&self, first_block: u64, node: u64, stream: u64) -> [u64; L] {
        let mut bases = [0u64; L];
        for (l, b) in bases.iter_mut().enumerate() {
            *b = cell_key(self.seed, first_block + l as u64, node, stream);
        }
        bases
    }

    /// Tallies the first `live` lanes of the freshly computed group.
    #[inline(always)]
    fn tally_group<const L: usize>(
        &self,
        scratch: &TapeScratch,
        live: usize,
        counts: &mut FaultCounts,
    ) {
        let vals = &scratch.vals;
        let clean = |s: usize, l: usize| vals[s * 2 * L + l];
        let noisy = |s: usize, l: usize| vals[s * 2 * L + L + l];
        for l in 0..live {
            let mut any = 0u64;
            for (k, &os) in self.output_slots.iter().enumerate() {
                let diff = clean(os, l) ^ noisy(os, l);
                counts.out_err[k] += u64::from(diff.count_ones());
                any |= diff;
            }
            counts.any_err += u64::from(any.count_ones());
            for (j, &(a, b)) in self.joint_pairs.iter().enumerate() {
                let (oa, ob) = (self.output_slots[a], self.output_slots[b]);
                let da = clean(oa, l) ^ noisy(oa, l);
                let db = clean(ob, l) ^ noisy(ob, l);
                counts.joint_err[j] += u64::from((da & db).count_ones());
            }
            if let Some(stats) = counts.node_stats.as_mut() {
                for s in 0..self.tape.n_slots() {
                    stats.accumulate(self.tape.node_of_slot(s), clean(s, l), noisy(s, l));
                }
            }
        }
    }
}

/// Runs tape-compiled Monte Carlo fault injection — the fast path behind
/// [`crate::estimate`]'s graph engine. Semantics (model, validation,
/// result shape) match [`crate::try_estimate`]; the sampled numbers come
/// from the tape engine's own position-based stream (see the module docs
/// for the determinism contract).
///
/// `lanes` selects the kernel's `u64` lane width (1, 2, 4, or 8); the
/// estimate is bit-identical for every accepted value and every thread
/// count.
///
/// # Errors
///
/// All of [`crate::try_estimate`]'s errors, plus
/// [`SimError::InvalidLaneWidth`] for an unsupported lane width.
///
/// # Panics
///
/// Panics if `tape` was not compiled from `circuit`.
pub fn try_estimate_tape(
    circuit: &Circuit,
    tape: &CircuitTape,
    node_eps: &[f64],
    config: &MonteCarloConfig,
    lanes: usize,
) -> Result<ReliabilityEstimate, SimError> {
    try_estimate_tape_cancellable(circuit, tape, node_eps, config, lanes, &CancelToken::new())
}

/// [`try_estimate_tape`] under a [`CancelToken`]: the token is polled at
/// every chunk hand-out ([`CHUNK_BLOCKS`] blocks, the check-interval
/// granularity of the tape engine). A fired token returns
/// [`SimError::Cancelled`] — never a partial estimate. The position-based
/// stream protocol means a run that completes before the token fires is
/// bit-identical to an undeadlined run at every thread count and lane
/// width.
///
/// # Errors
///
/// Everything [`try_estimate_tape`] returns, plus [`SimError::Cancelled`]
/// when `cancel` fires mid-run.
///
/// # Panics
///
/// Panics if `tape` was not compiled from `circuit`.
pub fn try_estimate_tape_cancellable(
    circuit: &Circuit,
    tape: &CircuitTape,
    node_eps: &[f64],
    config: &MonteCarloConfig,
    lanes: usize,
    cancel: &CancelToken,
) -> Result<ReliabilityEstimate, SimError> {
    assert_eq!(
        tape.n_slots(),
        circuit.len(),
        "tape was compiled from a different circuit"
    );
    let output_nodes = validate_run(circuit, node_eps, config)?;
    if !matches!(lanes, 1 | 2 | 4 | 8) {
        return Err(SimError::InvalidLaneWidth { lanes });
    }

    let n = tape.n_slots();
    let mut mask_q = vec![0u64; n];
    for (i, &e) in node_eps.iter().enumerate() {
        if e != 0.0 {
            mask_q[tape.slot_of_node(i)] = BiasedBits::new(e, config.bit_resolution).quantized();
        }
    }
    // Group noisy slots by quantized probability (slot order within each
    // class, classes ordered by probability — fully deterministic).
    let mut by_q: std::collections::BTreeMap<u64, Vec<(u32, u64)>> =
        std::collections::BTreeMap::new();
    for (s, &q) in mask_q.iter().enumerate() {
        if q != 0 {
            let node_term = (tape.node_of_slot(s) as u64)
                .wrapping_mul(0xC2B2_AE3D_27D4_EB4F)
                .wrapping_add(STREAM_MASK.wrapping_mul(0x1656_67B1_9E37_79F9));
            by_q.entry(q).or_default().push((s as u32, node_term));
        }
    }
    let mask_classes: Vec<MaskClass> = by_q
        .into_iter()
        .map(|(quantized, slots)| MaskClass { quantized, slots })
        .collect();
    let mut sample_q: Vec<Option<u64>> = vec![None; n];
    if let Some(probs) = &config.input_probs {
        for (pos, &p) in probs.iter().enumerate() {
            if (p - 0.5).abs() >= f64::EPSILON {
                let slot = tape.input_slots()[pos] as usize;
                sample_q[slot] = Some(BiasedBits::new(p, DEFAULT_RESOLUTION).quantized());
            }
        }
    }
    let output_slots: Vec<usize> = output_nodes.iter().map(|&i| tape.slot_of_node(i)).collect();

    let blocks = config.patterns.div_ceil(64).max(1);
    let total = blocks * 64;
    #[cfg(target_arch = "x86_64")]
    let simd = avx512_available();
    #[cfg(not(target_arch = "x86_64"))]
    let simd = false;
    let run = TapeRun {
        tape,
        mask_q,
        mask_classes,
        simd,
        resolution: config.bit_resolution,
        sample_q,
        output_slots,
        joint_pairs: &config.joint_pairs,
        track_nodes: config.track_nodes,
        seed: config.seed,
        blocks,
    };
    let counts = match lanes {
        1 => run.run::<1>(config.threads, cancel),
        2 => run.run::<2>(config.threads, cancel),
        4 => run.run::<4>(config.threads, cancel),
        _ => run.run::<8>(config.threads, cancel),
    }?;
    Ok(finalize_counts(total, counts, &config.joint_pairs))
}

/// Infallible [`try_estimate_tape`].
///
/// # Panics
///
/// Panics on any condition [`try_estimate_tape`] reports as an error.
#[must_use]
pub fn estimate_tape(
    circuit: &Circuit,
    tape: &CircuitTape,
    node_eps: &[f64],
    config: &MonteCarloConfig,
    lanes: usize,
) -> ReliabilityEstimate {
    match try_estimate_tape(circuit, tape, node_eps, config, lanes) {
        Ok(r) => r,
        Err(e) => panic!("{e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain() -> Circuit {
        let mut c = Circuit::new("chain");
        let a = c.add_input("a");
        let g1 = c.not(a);
        let g2 = c.not(g1);
        c.add_output("y", g2);
        c
    }

    #[test]
    fn biased_word_extremes() {
        assert_eq!(biased_word(123, 0, 24), 0);
        assert_eq!(biased_word(123, 1 << 24, 24), u64::MAX);
    }

    #[test]
    fn biased_word_half_is_one_plane_complement() {
        // p = ½ quantizes to the MSB alone: the word must be !u₀.
        let base = cell_key(7, 3, 5, STREAM_MASK);
        assert_eq!(biased_word(base, 1 << 23, 24), !digit_word(base, 0));
    }

    #[test]
    fn biased_word_means_converge() {
        for &p in &[0.05, 0.1, 0.3, 0.5, 0.7, 0.95] {
            let q = BiasedBits::new(p, 24).quantized();
            let mut ones = 0u64;
            let words = 20_000u64;
            for b in 0..words {
                let base = cell_key(0xDEAD_BEEF, b, 0, STREAM_MASK);
                ones += u64::from(biased_word(base, q, 24).count_ones());
            }
            #[allow(clippy::cast_precision_loss)]
            let mean = ones as f64 / (words * 64) as f64;
            assert!((mean - p).abs() < 0.005, "p={p} measured {mean}");
        }
    }

    #[test]
    fn estimates_are_lane_and_thread_invariant() {
        let c = chain();
        let tape = CircuitTape::compile(&c);
        let eps = [0.0, 0.1, 0.2];
        let cfg = MonteCarloConfig {
            patterns: 10_000, // not a multiple of the chunk width
            track_nodes: true,
            ..MonteCarloConfig::default()
        };
        let reference = try_estimate_tape(&c, &tape, &eps, &cfg, 4).unwrap();
        for lanes in [1, 2, 4, 8] {
            for threads in [1, 2, 8] {
                let cfg = MonteCarloConfig {
                    threads,
                    ..cfg.clone()
                };
                let r = try_estimate_tape(&c, &tape, &eps, &cfg, lanes).unwrap();
                assert_eq!(r, reference, "lanes={lanes} threads={threads}");
            }
        }
    }

    #[test]
    fn completed_run_under_deadline_is_bit_identical_across_thread_counts() {
        // The determinism contract pinned: a run that completes under a
        // (generous) deadline must equal the undeadlined run bit for bit,
        // at every thread count.
        let c = chain();
        let tape = CircuitTape::compile(&c);
        let eps = [0.0, 0.1, 0.2];
        let base_cfg = MonteCarloConfig {
            patterns: 10_000,
            track_nodes: true,
            ..MonteCarloConfig::default()
        };
        let reference = try_estimate_tape(&c, &tape, &eps, &base_cfg, 4).unwrap();
        for threads in [1, 2, 8] {
            let cfg = MonteCarloConfig {
                threads,
                ..base_cfg.clone()
            };
            let token = CancelToken::with_deadline(std::time::Duration::from_secs(3600));
            let under = try_estimate_tape_cancellable(&c, &tape, &eps, &cfg, 4, &token).unwrap();
            assert_eq!(under, reference, "threads={threads}");
        }
    }

    #[test]
    fn fired_token_returns_typed_cancelled() {
        let c = chain();
        let tape = CircuitTape::compile(&c);
        let cfg = MonteCarloConfig {
            patterns: 1 << 16,
            ..MonteCarloConfig::default()
        };
        let token = CancelToken::new();
        token.cancel();
        let err = try_estimate_tape_cancellable(&c, &tape, &[0.0, 0.1, 0.1], &cfg, 4, &token)
            .unwrap_err();
        assert!(matches!(err, SimError::Cancelled(_)), "{err:?}");
    }

    #[test]
    fn tape_estimate_matches_theory() {
        // Two noisy inverters: δ = 2ε(1-ε).
        let c = chain();
        let tape = CircuitTape::compile(&c);
        let e = 0.1;
        let cfg = MonteCarloConfig {
            patterns: 1 << 17,
            ..MonteCarloConfig::default()
        };
        let r = try_estimate_tape(&c, &tape, &[0.0, e, e], &cfg, DEFAULT_LANES).unwrap();
        let expect = 2.0 * e * (1.0 - e);
        assert!(
            (r.per_output()[0] - expect).abs() < 0.01,
            "{} vs {expect}",
            r.per_output()[0]
        );
    }

    #[test]
    fn invalid_lane_width_is_typed() {
        let c = chain();
        let tape = CircuitTape::compile(&c);
        let cfg = MonteCarloConfig::default();
        assert_eq!(
            try_estimate_tape(&c, &tape, &[0.0, 0.1, 0.1], &cfg, 3),
            Err(SimError::InvalidLaneWidth { lanes: 3 })
        );
    }

    #[test]
    fn validation_matches_graph_engine() {
        let c = chain();
        let tape = CircuitTape::compile(&c);
        let cfg = MonteCarloConfig {
            patterns: 0,
            ..MonteCarloConfig::default()
        };
        assert_eq!(
            try_estimate_tape(&c, &tape, &[0.0, 0.1, 0.1], &cfg, 4),
            Err(SimError::ZeroPatternBudget)
        );
        assert_eq!(
            try_estimate_tape(&c, &tape, &[0.0], &MonteCarloConfig::default(), 4),
            Err(SimError::EpsLengthMismatch {
                expected: 3,
                actual: 1
            })
        );
    }

    #[test]
    fn joint_pairs_and_node_stats_are_tracked() {
        let mut c = Circuit::new("t");
        let a = c.add_input("a");
        let g = c.not(a);
        c.add_output("y1", g);
        c.add_output("y2", g);
        let tape = CircuitTape::compile(&c);
        let cfg = MonteCarloConfig {
            joint_pairs: vec![(0, 1)],
            track_nodes: true,
            patterns: 1 << 16,
            ..MonteCarloConfig::default()
        };
        let r = try_estimate_tape(&c, &tape, &[0.0, 0.25], &cfg, 4).unwrap();
        let j = r.joint(0, 1).unwrap();
        assert!((j - r.per_output()[0]).abs() < 1e-12);
        let stats = r.node_stats().unwrap();
        assert!((stats.p01(g.index()) - 0.25).abs() < 0.01);
        assert!((stats.p10(g.index()) - 0.25).abs() < 0.01);
    }

    #[test]
    fn biased_inputs_shift_statistics() {
        // Buffer of a 0.9-biased input with a noisy buffer.
        let mut c = Circuit::new("t");
        let a = c.add_input("a");
        let g = c.buf(a);
        c.add_output("y", g);
        let tape = CircuitTape::compile(&c);
        let cfg = MonteCarloConfig {
            input_probs: Some(vec![0.9]),
            track_nodes: true,
            patterns: 1 << 16,
            ..MonteCarloConfig::default()
        };
        let r = try_estimate_tape(&c, &tape, &[0.0, 0.0], &cfg, 4).unwrap();
        let stats = r.node_stats().unwrap();
        assert!((stats.signal_probability(a.index()) - 0.9).abs() < 0.01);
    }
}
