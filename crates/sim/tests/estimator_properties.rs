//! Property tests: Monte Carlo and the sampling estimators agree with
//! exhaustive ground truth on small random circuits.

// Test-only code: the library's unwrap ban does not apply here.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use proptest::prelude::*;
use relogic_netlist::{Circuit, GateKind, NodeId};
use relogic_sim::{
    estimate, exact_reliability, flip_influence, signal_probabilities, MonteCarloConfig,
};

fn random_circuit(ops: &[(u8, u8, u8)], inputs: usize) -> Circuit {
    let mut c = Circuit::new("prop");
    for i in 0..inputs {
        c.add_input(format!("x{i}"));
    }
    for &(kind, a, b) in ops {
        let len = c.len();
        let fa = NodeId::from_index(a as usize % len);
        let fb = NodeId::from_index(b as usize % len);
        let kind = GateKind::LOGIC_KINDS[kind as usize % GateKind::LOGIC_KINDS.len()];
        match kind {
            GateKind::Buf | GateKind::Not => {
                c.add_gate(kind, [fa]).unwrap();
            }
            _ => {
                c.add_gate(kind, [fa, fb]).unwrap();
            }
        }
    }
    let last = NodeId::from_index(c.len() - 1);
    c.add_output("y", last);
    c
}

fn arb_case() -> impl Strategy<Value = (Circuit, f64)> {
    (
        proptest::collection::vec((any::<u8>(), any::<u8>(), any::<u8>()), 1..10),
        2usize..5,
        0.0f64..=0.5,
    )
        .prop_map(|(ops, inputs, eps)| (random_circuit(&ops, inputs), eps))
}

fn uniform_eps(c: &Circuit, e: f64) -> Vec<f64> {
    c.iter()
        .map(|(_, n)| if n.kind().is_gate() { e } else { 0.0 })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn monte_carlo_converges_to_exact((c, e) in arb_case()) {
        let eps = uniform_eps(&c, e);
        let exact = exact_reliability(&c, &eps);
        let mc = estimate(&c, &eps, &MonteCarloConfig {
            patterns: 1 << 15,
            ..MonteCarloConfig::default()
        });
        // 4-sigma bound with se <= 0.5/sqrt(n).
        let bound = 4.0 * 0.5 / f64::sqrt(mc.patterns() as f64) + 1e-9;
        prop_assert!(
            (mc.per_output()[0] - exact.per_output[0]).abs() < bound.max(0.02),
            "mc {} vs exact {}",
            mc.per_output()[0],
            exact.per_output[0]
        );
        prop_assert!((mc.any_output() - exact.any_output).abs() < bound.max(0.02));
    }

    #[test]
    fn signal_probabilities_match_truth_table((c, _e) in arb_case()) {
        let probs = signal_probabilities(&c, 1 << 14, 3);
        // Brute-force count per node.
        let m = c.input_count();
        let mut ones = vec![0usize; c.len()];
        for v in 0..1usize << m {
            let bits: Vec<bool> = (0..m).map(|j| v >> j & 1 != 0).collect();
            for (i, &val) in c.eval_all(&bits).iter().enumerate() {
                ones[i] += usize::from(val);
            }
        }
        for i in 0..c.len() {
            let expect = ones[i] as f64 / (1usize << m) as f64;
            prop_assert!(
                (probs[i] - expect).abs() < 0.03,
                "node {i}: {} vs {expect}",
                probs[i]
            );
        }
    }

    #[test]
    fn flip_influence_bounded_and_zero_for_dead_nodes((c, _e) in arb_case()) {
        for id in 0..c.len() {
            let node = NodeId::from_index(id);
            let inf = flip_influence(&c, &[node]);
            prop_assert!((0.0..=1.0).contains(&inf[0]));
        }
        // Flipping the output node itself is always observable.
        let out_node = c.outputs()[0].node();
        prop_assert_eq!(flip_influence(&c, &[out_node])[0], 1.0);
    }

    #[test]
    fn estimate_is_bit_identical_for_every_thread_count(
        (c, e) in arb_case(),
        patterns in 1u64..6000,
        threads in 2usize..8,
    ) {
        // `patterns` deliberately covers budgets that are not multiples of
        // the 1024-pattern chunk width (nor of the 64-pattern block).
        let eps = uniform_eps(&c, e);
        let cfg = MonteCarloConfig {
            patterns,
            track_nodes: true,
            ..MonteCarloConfig::default()
        };
        let serial = estimate(&c, &eps, &MonteCarloConfig { threads: 1, ..cfg.clone() });
        let parallel = estimate(&c, &eps, &MonteCarloConfig { threads, ..cfg });
        prop_assert_eq!(serial, parallel);
    }

    #[test]
    fn exact_reliability_is_monotone_at_zero((c, _e) in arb_case()) {
        let zero = exact_reliability(&c, &uniform_eps(&c, 0.0));
        prop_assert_eq!(zero.per_output[0], 0.0);
        let small = exact_reliability(&c, &uniform_eps(&c, 0.01));
        prop_assert!(small.per_output[0] >= 0.0);
    }
}
