//! The tentpole guarantee of the parallel execution layer: Monte Carlo
//! fault injection is **bit-identical for every thread count**. These
//! tests pin that guarantee on a multi-output circuit with reconvergent
//! fanout, exercising every tallied quantity — per-output error counts,
//! any-output consolidation, joint output pairs, and per-node conditional
//! error statistics — at pattern budgets both aligned and misaligned with
//! the chunk width.

use relogic_netlist::Circuit;
use relogic_sim::parallel::{chunk_seed, CHUNK_PATTERNS};
use relogic_sim::{estimate, MonteCarloConfig};

/// A 3-output circuit with shared logic and reconvergent fanout, big
/// enough that every chunk tallies nonzero error counts at ε = 0.05.
fn circuit() -> Circuit {
    let mut c = Circuit::new("det");
    let inputs: Vec<_> = (0..6).map(|i| c.add_input(format!("x{i}"))).collect();
    let g0 = c.and([inputs[0], inputs[1]]);
    let g1 = c.or([inputs[2], inputs[3]]);
    let g2 = c.xor([inputs[4], inputs[5]]);
    let h0 = c.nand([g0, g1]);
    let h1 = c.nor([g1, g2]);
    let h2 = c.xor([g0, g2]);
    let y0 = c.or([h0, h1]);
    let y1 = c.and([h1, h2]);
    let y2 = c.xor([h0, h2]);
    c.add_output("y0", y0);
    c.add_output("y1", y1);
    c.add_output("y2", y2);
    c
}

fn uniform_eps(c: &Circuit, e: f64) -> Vec<f64> {
    c.iter()
        .map(|(_, n)| if n.kind().is_gate() { e } else { 0.0 })
        .collect()
}

fn config(patterns: u64, threads: usize) -> MonteCarloConfig {
    MonteCarloConfig {
        patterns,
        seed: 42,
        joint_pairs: vec![(0, 1), (0, 2), (1, 2)],
        track_nodes: true,
        threads,
        ..MonteCarloConfig::default()
    }
}

#[test]
fn estimate_is_bit_identical_at_1_2_and_7_threads() {
    let c = circuit();
    let eps = uniform_eps(&c, 0.05);
    // 20 000 patterns: rounds to 20 032, spanning 20 chunks with a ragged
    // final chunk — every merge path is exercised.
    let base = estimate(&c, &eps, &config(20_000, 1));
    assert!(base.per_output().iter().any(|&d| d > 0.0));
    for threads in [2, 7] {
        let parallel = estimate(&c, &eps, &config(20_000, threads));
        assert_eq!(base, parallel, "threads = {threads}");
    }
}

#[test]
fn joint_pairs_and_node_statistics_survive_the_parallel_merge_exactly() {
    let c = circuit();
    let eps = uniform_eps(&c, 0.08);
    let serial = estimate(&c, &eps, &config(30_000, 1));
    let parallel = estimate(&c, &eps, &config(30_000, 5));
    for &(a, b) in &[(0, 1), (0, 2), (1, 2)] {
        let s = serial.joint(a, b).expect("pair tracked");
        let p = parallel.joint(a, b).expect("pair tracked");
        assert_eq!(s.to_bits(), p.to_bits(), "joint ({a}, {b})");
    }
    let sn = serial.node_stats().expect("node stats tracked");
    let pn = parallel.node_stats().expect("node stats tracked");
    assert_eq!(sn, pn);
    for i in 0..c.len() {
        assert_eq!(sn.p01(i).to_bits(), pn.p01(i).to_bits(), "p01 of node {i}");
        assert_eq!(sn.p10(i).to_bits(), pn.p10(i).to_bits(), "p10 of node {i}");
    }
}

#[test]
fn budgets_misaligned_with_the_chunk_width_stay_deterministic() {
    let c = circuit();
    let eps = uniform_eps(&c, 0.1);
    // One pattern, exactly one chunk, chunk+1 patterns, and a prime budget.
    for patterns in [1, CHUNK_PATTERNS, CHUNK_PATTERNS + 1, 7919] {
        let serial = estimate(&c, &eps, &config(patterns, 1));
        let parallel = estimate(&c, &eps, &config(patterns, 4));
        assert_eq!(serial, parallel, "patterns = {patterns}");
    }
}

#[test]
fn auto_detect_matches_explicit_thread_counts() {
    let c = circuit();
    let eps = uniform_eps(&c, 0.05);
    let auto = estimate(&c, &eps, &config(4096, 0));
    let one = estimate(&c, &eps, &config(4096, 1));
    assert_eq!(auto, one);
}

#[test]
fn different_seeds_give_different_streams() {
    let c = circuit();
    let eps = uniform_eps(&c, 0.1);
    let a = estimate(
        &c,
        &eps,
        &MonteCarloConfig {
            seed: 1,
            ..config(8192, 2)
        },
    );
    let b = estimate(
        &c,
        &eps,
        &MonteCarloConfig {
            seed: 2,
            ..config(8192, 2)
        },
    );
    assert_ne!(a, b, "distinct seeds must not collide");
    // And the chunk-seed derivation itself is injective-ish across both axes.
    assert_ne!(chunk_seed(1, 0), chunk_seed(1, 1));
    assert_ne!(chunk_seed(1, 0), chunk_seed(2, 0));
}
