//! Payload codecs for each artifact kind.
//!
//! All integers are little-endian; `f64` values are stored as their IEEE
//! bit patterns (`to_bits`/`from_bits`), so a round trip is bit-identical
//! including signed zeros and subnormals. Sequences are length-prefixed
//! (`u64` count). Decoders are defensive even though they sit behind the
//! container checksum: every read is bounds-checked, every count is
//! validated against the bytes actually remaining before any allocation,
//! and the rebuilt values route through the owning crate's `from_parts`
//! validators — a hash collision must degrade into
//! [`ContainerError::Malformed`], never a panic or an oversized
//! allocation.

use crate::container::ContainerError;
use relogic::{BddEngineStats, Diagnostics, ObservabilityMatrix, Weights};
use relogic_estimate::PropagationEstimate;
use relogic_netlist::GateKind;
use relogic_sim::{CircuitTape, OwnedTapeParts};

/// Provenance record stored next to a circuit's computed artifacts: enough
/// to recompute them offline (`relogic cache warm`) and to answer "what is
/// this key?" (`relogic cache ls`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ArtifactMeta {
    /// Netlist format wire tag (`"bench"`, `"blif"`, `"verilog"`).
    pub format_tag: String,
    /// Backend cache tag (`"bdd"`, `"sim:{patterns}:{seed}"`).
    pub backend_tag: String,
    /// Full netlist text.
    pub netlist: String,
}

struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn new() -> Writer {
        Writer { buf: Vec::new() }
    }

    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    fn u32_slice(&mut self, v: &[u32]) {
        self.u64(v.len() as u64);
        for &x in v {
            self.buf.extend_from_slice(&x.to_le_bytes());
        }
    }

    fn f64_slice(&mut self, v: &[f64]) {
        self.u64(v.len() as u64);
        for &x in v {
            self.f64(x);
        }
    }

    fn str(&mut self, v: &str) {
        self.u64(v.len() as u64);
        self.buf.extend_from_slice(v.as_bytes());
    }
}

struct Reader<'a> {
    buf: &'a [u8],
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], ContainerError> {
        if self.buf.len() < n {
            return Err(ContainerError::Malformed(
                "unexpected end of payload".into(),
            ));
        }
        let (head, rest) = self.buf.split_at(n);
        self.buf = rest;
        Ok(head)
    }

    fn u8(&mut self) -> Result<u8, ContainerError> {
        Ok(self.take(1)?[0])
    }

    fn u64(&mut self) -> Result<u64, ContainerError> {
        let bytes = self.take(8)?;
        bytes
            .try_into()
            .map(u64::from_le_bytes)
            .map_err(|_| ContainerError::Malformed("short u64".into()))
    }

    fn f64(&mut self) -> Result<f64, ContainerError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a length prefix for `elem_bytes`-sized elements, refusing
    /// counts that exceed the bytes remaining (so a corrupt count can
    /// never drive a huge allocation).
    fn count(&mut self, elem_bytes: usize) -> Result<usize, ContainerError> {
        let n = self.u64()?;
        let n = usize::try_from(n)
            .map_err(|_| ContainerError::Malformed("count overflows usize".into()))?;
        if n.checked_mul(elem_bytes).is_none_or(|b| b > self.buf.len()) {
            return Err(ContainerError::Malformed("count exceeds payload".into()));
        }
        Ok(n)
    }

    fn u32_vec(&mut self) -> Result<Vec<u32>, ContainerError> {
        let n = self.count(4)?;
        let bytes = self.take(n * 4)?;
        Ok(bytes
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect())
    }

    fn f64_vec(&mut self) -> Result<Vec<f64>, ContainerError> {
        let n = self.count(8)?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.f64()?);
        }
        Ok(out)
    }

    fn string(&mut self) -> Result<String, ContainerError> {
        let n = self.count(1)?;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| ContainerError::Malformed("invalid utf-8".into()))
    }

    fn finish(&self) -> Result<(), ContainerError> {
        if self.buf.is_empty() {
            Ok(())
        } else {
            Err(ContainerError::Malformed(format!(
                "{} trailing bytes",
                self.buf.len()
            )))
        }
    }
}

/// Encodes a provenance record.
#[must_use]
pub fn encode_meta(meta: &ArtifactMeta) -> Vec<u8> {
    let mut w = Writer::new();
    w.str(&meta.format_tag);
    w.str(&meta.backend_tag);
    w.str(&meta.netlist);
    w.buf
}

/// Decodes a provenance record.
///
/// # Errors
///
/// [`ContainerError::Malformed`] on truncation, bad UTF-8, or trailing
/// bytes.
pub fn decode_meta(payload: &[u8]) -> Result<ArtifactMeta, ContainerError> {
    let mut r = Reader::new(payload);
    let meta = ArtifactMeta {
        format_tag: r.string()?,
        backend_tag: r.string()?,
        netlist: r.string()?,
    };
    r.finish()?;
    Ok(meta)
}

/// Encodes a compiled circuit tape.
#[must_use]
pub fn encode_tape(tape: &CircuitTape) -> Vec<u8> {
    let p = tape.parts();
    let mut w = Writer::new();
    w.u32_slice(p.slot_of_node);
    w.u32_slice(p.node_of_slot);
    w.u64(p.kinds.len() as u64);
    for &k in p.kinds {
        w.u8(k.wire_code());
    }
    w.u32_slice(p.fanin_start);
    w.u32_slice(p.fanin_slots);
    w.u32_slice(p.level_starts);
    w.u32_slice(p.input_slots);
    w.u32_slice(p.output_slots);
    w.buf
}

/// Decodes a compiled circuit tape, revalidating every structural
/// invariant via [`CircuitTape::from_parts`].
///
/// # Errors
///
/// [`ContainerError::Malformed`] on truncation, an unknown gate code, a
/// violated tape invariant, or trailing bytes.
pub fn decode_tape(payload: &[u8]) -> Result<CircuitTape, ContainerError> {
    let mut r = Reader::new(payload);
    let slot_of_node = r.u32_vec()?;
    let node_of_slot = r.u32_vec()?;
    let n_kinds = r.count(1)?;
    let mut kinds = Vec::with_capacity(n_kinds);
    for _ in 0..n_kinds {
        let code = r.u8()?;
        kinds.push(
            GateKind::from_wire_code(code)
                .ok_or_else(|| ContainerError::Malformed(format!("unknown gate code {code}")))?,
        );
    }
    let parts = OwnedTapeParts {
        slot_of_node,
        node_of_slot,
        kinds,
        fanin_start: r.u32_vec()?,
        fanin_slots: r.u32_vec()?,
        level_starts: r.u32_vec()?,
        input_slots: r.u32_vec()?,
        output_slots: r.u32_vec()?,
    };
    r.finish()?;
    CircuitTape::from_parts(parts).map_err(ContainerError::Malformed)
}

/// Encodes weight vectors + signal probabilities.
#[must_use]
pub fn encode_weights(weights: &Weights) -> Vec<u8> {
    let mut w = Writer::new();
    w.u64(weights.vectors().len() as u64);
    for v in weights.vectors() {
        w.f64_slice(v);
    }
    w.f64_slice(weights.signal_probs());
    w.buf
}

/// Decodes weight vectors, revalidating via [`Weights::from_parts`].
///
/// # Errors
///
/// [`ContainerError::Malformed`] on truncation, a violated weights
/// invariant, or trailing bytes.
pub fn decode_weights(payload: &[u8]) -> Result<Weights, ContainerError> {
    let mut r = Reader::new(payload);
    // Each vector costs at least a u64 length prefix.
    let n = r.count(8)?;
    let mut vectors = Vec::with_capacity(n);
    for _ in 0..n {
        vectors.push(r.f64_vec()?);
    }
    let signal_probs = r.f64_vec()?;
    r.finish()?;
    Weights::from_parts(vectors, signal_probs).map_err(ContainerError::Malformed)
}

/// Encodes an observability matrix together with its run diagnostics.
#[must_use]
pub fn encode_observability(matrix: &ObservabilityMatrix) -> Vec<u8> {
    let mut w = Writer::new();
    w.u64(matrix.per_output_rows().len() as u64);
    for row in matrix.per_output_rows() {
        w.f64_slice(row);
    }
    w.f64_slice(matrix.any_output_values());
    let d = matrix.diagnostics();
    w.u64(d.prob_clamps());
    w.u64(d.coeff_saturations());
    w.u64(d.theta_clamps());
    w.u64(d.correlation_fallbacks());
    w.f64(d.worst_excursion());
    match d.bdd_stats() {
        None => w.u8(0),
        Some(s) => {
            w.u8(1);
            w.u64(s.peak_live_nodes as u64);
            w.u64(s.live_nodes as u64);
            w.f64(s.unique_load);
            w.u64(s.cache_hits);
            w.u64(s.cache_misses);
            w.u64(s.gc_runs);
            w.u64(s.reorders);
        }
    }
    w.buf
}

/// Decodes an observability matrix, revalidating via
/// [`ObservabilityMatrix::from_parts`].
///
/// # Errors
///
/// [`ContainerError::Malformed`] on truncation, a violated matrix
/// invariant, a bad diagnostics flag, or trailing bytes.
pub fn decode_observability(payload: &[u8]) -> Result<ObservabilityMatrix, ContainerError> {
    let mut r = Reader::new(payload);
    let n = r.count(8)?;
    let mut per_output = Vec::with_capacity(n);
    for _ in 0..n {
        per_output.push(r.f64_vec()?);
    }
    let any_output = r.f64_vec()?;
    let prob_clamps = r.u64()?;
    let coeff_saturations = r.u64()?;
    let theta_clamps = r.u64()?;
    let correlation_fallbacks = r.u64()?;
    let worst_excursion = r.f64()?;
    let bdd = match r.u8()? {
        0 => None,
        1 => Some(BddEngineStats {
            peak_live_nodes: usize::try_from(r.u64()?)
                .map_err(|_| ContainerError::Malformed("peak_live_nodes overflow".into()))?,
            live_nodes: usize::try_from(r.u64()?)
                .map_err(|_| ContainerError::Malformed("live_nodes overflow".into()))?,
            unique_load: r.f64()?,
            cache_hits: r.u64()?,
            cache_misses: r.u64()?,
            gc_runs: r.u64()?,
            reorders: r.u64()?,
        }),
        flag => {
            return Err(ContainerError::Malformed(format!(
                "bad diagnostics flag {flag}"
            )))
        }
    };
    r.finish()?;
    let diagnostics = Diagnostics::restore(
        prob_clamps,
        coeff_saturations,
        theta_clamps,
        correlation_fallbacks,
        worst_excursion,
        bdd,
    );
    ObservabilityMatrix::from_parts(per_output, any_output, diagnostics)
        .map_err(ContainerError::Malformed)
}

/// Encodes a propagation estimate (signal probabilities + per-output and
/// any-output observability estimates).
#[must_use]
pub fn encode_estimate(estimate: &PropagationEstimate) -> Vec<u8> {
    let mut w = Writer::new();
    w.f64_slice(estimate.signal_probs());
    w.u64(estimate.per_output_rows().len() as u64);
    for row in estimate.per_output_rows() {
        w.f64_slice(row);
    }
    w.f64_slice(estimate.any_output_values());
    w.buf
}

/// Decodes a propagation estimate, revalidating via
/// [`PropagationEstimate::from_parts`].
///
/// # Errors
///
/// [`ContainerError::Malformed`] on truncation, a violated estimate
/// invariant (shape mismatch, non-probability value), or trailing bytes.
pub fn decode_estimate(payload: &[u8]) -> Result<PropagationEstimate, ContainerError> {
    let mut r = Reader::new(payload);
    let signal_probs = r.f64_vec()?;
    let n = r.count(8)?;
    let mut per_output = Vec::with_capacity(n);
    for _ in 0..n {
        per_output.push(r.f64_vec()?);
    }
    let any_output = r.f64_vec()?;
    r.finish()?;
    PropagationEstimate::from_parts(signal_probs, per_output, any_output)
        .map_err(ContainerError::Malformed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn meta_round_trips() {
        let meta = ArtifactMeta {
            format_tag: "bench".into(),
            backend_tag: "sim:1024:7".into(),
            netlist: "INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n".into(),
        };
        assert_eq!(decode_meta(&encode_meta(&meta)).unwrap(), meta);
    }

    #[test]
    fn truncated_meta_is_malformed_not_a_panic() {
        let meta = ArtifactMeta {
            format_tag: "bench".into(),
            backend_tag: "bdd".into(),
            netlist: "x".into(),
        };
        let bytes = encode_meta(&meta);
        for cut in 0..bytes.len() {
            assert!(decode_meta(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn huge_count_is_rejected_before_allocating() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&u64::MAX.to_le_bytes());
        assert!(decode_weights(&bytes).is_err());
        assert!(decode_tape(&bytes).is_err());
        assert!(decode_observability(&bytes).is_err());
        assert!(decode_estimate(&bytes).is_err());
    }

    #[test]
    fn estimate_round_trips_bit_exactly() {
        let est = PropagationEstimate::from_parts(
            vec![0.5, 0.25, 1.0],
            vec![vec![1.0, 0.0], vec![0.5, 0.125], vec![0.0, 1.0]],
            vec![1.0, 0.5625, 1.0],
        )
        .unwrap();
        let decoded = decode_estimate(&encode_estimate(&est)).unwrap();
        assert_eq!(decoded, est);
    }

    #[test]
    fn truncated_estimate_is_malformed_not_a_panic() {
        let est = PropagationEstimate::from_parts(
            vec![0.5, 0.25],
            vec![vec![1.0], vec![0.5]],
            vec![1.0, 0.5],
        )
        .unwrap();
        let bytes = encode_estimate(&est);
        for cut in 0..bytes.len() {
            assert!(decode_estimate(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let meta = ArtifactMeta {
            format_tag: "bench".into(),
            backend_tag: "bdd".into(),
            netlist: "x".into(),
        };
        let mut bytes = encode_meta(&meta);
        bytes.push(0);
        assert!(matches!(
            decode_meta(&bytes),
            Err(ContainerError::Malformed(_))
        ));
    }
}
