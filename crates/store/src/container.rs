//! The on-disk container format.
//!
//! Every artifact file is one container: a fixed 36-byte header followed
//! by the payload bytes the header describes.
//!
//! ```text
//! offset  size  field
//! 0       8     magic  b"RLGSTORE"
//! 8       2     format version, u16 LE (currently 1)
//! 10      1     artifact kind (ArtifactKind wire code)
//! 11      1     flags (reserved, must be 0)
//! 12      8     payload length in bytes, u64 LE
//! 20      8     checksum stream A, u64 LE   (FNV-1a, standard offset)
//! 28      8     checksum stream B, u64 LE   (FNV-1a, XORed offset)
//! 36      ...   payload
//! ```
//!
//! The dual-FNV checksum covers the payload only; the header fields are
//! self-validating (fixed magic, known version, kind expected by the
//! caller, length checked against the actual file size). A reader rejects
//! the container — and the store quarantines the file — on the FIRST
//! mismatch; the payload is never deserialized unless every check passes.

use crate::key::checksum;

/// File magic, first 8 bytes of every container.
pub const MAGIC: [u8; 8] = *b"RLGSTORE";
/// Current container format version. Bump on ANY layout change; readers
/// quarantine unknown versions rather than guessing.
pub const FORMAT_VERSION: u16 = 1;
/// Bytes in the fixed header.
pub const HEADER_LEN: usize = 36;

/// What a container holds. Wire codes are append-only.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ArtifactKind {
    /// Provenance record: format tag, backend tag, netlist text.
    Meta,
    /// A compiled `relogic_sim::CircuitTape`.
    Tape,
    /// `relogic::Weights` (weight vectors + signal probabilities).
    Weights,
    /// `relogic::ObservabilityMatrix` (+ its run diagnostics).
    Observability,
    /// A `relogic_estimate::PropagationEstimate` (signal probabilities +
    /// per-output and any-output observability estimates).
    Estimator,
}

impl ArtifactKind {
    /// Every kind, in wire-code order.
    pub const ALL: [ArtifactKind; 5] = [
        ArtifactKind::Meta,
        ArtifactKind::Tape,
        ArtifactKind::Weights,
        ArtifactKind::Observability,
        ArtifactKind::Estimator,
    ];

    /// Stable wire code stored in the container header.
    #[must_use]
    pub fn code(self) -> u8 {
        match self {
            ArtifactKind::Meta => 0,
            ArtifactKind::Tape => 1,
            ArtifactKind::Weights => 2,
            ArtifactKind::Observability => 3,
            ArtifactKind::Estimator => 4,
        }
    }

    /// Inverse of [`ArtifactKind::code`]; `None` for unknown codes.
    #[must_use]
    pub fn from_code(code: u8) -> Option<ArtifactKind> {
        match code {
            0 => Some(ArtifactKind::Meta),
            1 => Some(ArtifactKind::Tape),
            2 => Some(ArtifactKind::Weights),
            3 => Some(ArtifactKind::Observability),
            4 => Some(ArtifactKind::Estimator),
            _ => None,
        }
    }

    /// On-disk file extension for this kind.
    #[must_use]
    pub fn extension(self) -> &'static str {
        match self {
            ArtifactKind::Meta => "meta",
            ArtifactKind::Tape => "tape",
            ArtifactKind::Weights => "wts",
            ArtifactKind::Observability => "obs",
            ArtifactKind::Estimator => "est",
        }
    }

    /// Inverse of [`ArtifactKind::extension`].
    #[must_use]
    pub fn from_extension(ext: &str) -> Option<ArtifactKind> {
        match ext {
            "meta" => Some(ArtifactKind::Meta),
            "tape" => Some(ArtifactKind::Tape),
            "wts" => Some(ArtifactKind::Weights),
            "obs" => Some(ArtifactKind::Observability),
            "est" => Some(ArtifactKind::Estimator),
            _ => None,
        }
    }

    /// Human-readable kind name (CLI `cache ls` output).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            ArtifactKind::Meta => "meta",
            ArtifactKind::Tape => "tape",
            ArtifactKind::Weights => "weights",
            ArtifactKind::Observability => "observability",
            ArtifactKind::Estimator => "estimator",
        }
    }
}

/// Why a container was rejected. The store maps any variant to the same
/// outcome — quarantine — but `cache verify` reports the reason.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ContainerError {
    /// File shorter than the fixed header.
    Truncated,
    /// First 8 bytes are not [`MAGIC`].
    BadMagic,
    /// Header version is not [`FORMAT_VERSION`].
    BadVersion(u16),
    /// Header kind code is unknown or not the kind the caller expected.
    BadKind(u8),
    /// Reserved flags byte is non-zero.
    BadFlags(u8),
    /// Header payload length disagrees with the actual byte count.
    LengthMismatch { header: u64, actual: u64 },
    /// Dual-FNV checksum mismatch: the payload bytes changed.
    ChecksumMismatch,
    /// Checksum passed but the payload failed structural validation.
    Malformed(String),
}

impl std::fmt::Display for ContainerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ContainerError::Truncated => write!(f, "truncated container"),
            ContainerError::BadMagic => write!(f, "bad magic"),
            ContainerError::BadVersion(v) => write!(f, "unsupported format version {v}"),
            ContainerError::BadKind(c) => write!(f, "unexpected artifact kind code {c}"),
            ContainerError::BadFlags(b) => write!(f, "reserved flags byte {b:#04x} set"),
            ContainerError::LengthMismatch { header, actual } => {
                write!(
                    f,
                    "payload length mismatch (header {header}, actual {actual})"
                )
            }
            ContainerError::ChecksumMismatch => write!(f, "checksum mismatch"),
            ContainerError::Malformed(why) => write!(f, "malformed payload: {why}"),
        }
    }
}

/// Frames `payload` into a complete container byte vector.
#[must_use]
pub fn seal(kind: ArtifactKind, payload: &[u8]) -> Vec<u8> {
    let (sum_a, sum_b) = checksum(payload);
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    out.push(kind.code());
    out.push(0); // flags
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&sum_a.to_le_bytes());
    out.extend_from_slice(&sum_b.to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Validates every header field and the payload checksum of `bytes`,
/// returning the payload slice on success.
///
/// # Errors
///
/// The first failed check, in layout order: truncation, magic, version,
/// kind, flags, declared-vs-actual length, checksum.
pub fn open(bytes: &[u8], expected: ArtifactKind) -> Result<&[u8], ContainerError> {
    if bytes.len() < HEADER_LEN {
        return Err(ContainerError::Truncated);
    }
    let (header, payload) = bytes.split_at(HEADER_LEN);
    if header[0..8] != MAGIC {
        return Err(ContainerError::BadMagic);
    }
    let version = u16::from_le_bytes([header[8], header[9]]);
    if version != FORMAT_VERSION {
        return Err(ContainerError::BadVersion(version));
    }
    if ArtifactKind::from_code(header[10]) != Some(expected) {
        return Err(ContainerError::BadKind(header[10]));
    }
    if header[11] != 0 {
        return Err(ContainerError::BadFlags(header[11]));
    }
    let declared = u64::from_le_bytes(
        header[12..20]
            .try_into()
            .map_err(|_| ContainerError::Truncated)?,
    );
    if declared != payload.len() as u64 {
        return Err(ContainerError::LengthMismatch {
            header: declared,
            actual: payload.len() as u64,
        });
    }
    let sum_a = u64::from_le_bytes(
        header[20..28]
            .try_into()
            .map_err(|_| ContainerError::Truncated)?,
    );
    let sum_b = u64::from_le_bytes(
        header[28..36]
            .try_into()
            .map_err(|_| ContainerError::Truncated)?,
    );
    if checksum(payload) != (sum_a, sum_b) {
        return Err(ContainerError::ChecksumMismatch);
    }
    Ok(payload)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seal_then_open_returns_the_payload() {
        let sealed = seal(ArtifactKind::Tape, b"hello");
        assert_eq!(open(&sealed, ArtifactKind::Tape).unwrap(), b"hello");
    }

    #[test]
    fn kind_codes_and_extensions_round_trip() {
        for kind in ArtifactKind::ALL {
            assert_eq!(ArtifactKind::from_code(kind.code()), Some(kind));
            assert_eq!(ArtifactKind::from_extension(kind.extension()), Some(kind));
        }
        assert_eq!(ArtifactKind::from_code(5), None);
        assert_eq!(ArtifactKind::from_extension("corrupt"), None);
    }

    #[test]
    fn every_header_defect_is_rejected() {
        let sealed = seal(ArtifactKind::Weights, b"payload");

        assert_eq!(
            open(&sealed[..10], ArtifactKind::Weights),
            Err(ContainerError::Truncated)
        );

        let mut bad = sealed.clone();
        bad[0] ^= 0xff;
        assert_eq!(
            open(&bad, ArtifactKind::Weights),
            Err(ContainerError::BadMagic)
        );

        let mut bad = sealed.clone();
        bad[8] = 0xff;
        assert!(matches!(
            open(&bad, ArtifactKind::Weights),
            Err(ContainerError::BadVersion(_))
        ));

        // Right container, wrong expectation: version gating also covers
        // a kind byte that decodes but is not what the caller asked for.
        assert_eq!(
            open(&sealed, ArtifactKind::Tape),
            Err(ContainerError::BadKind(ArtifactKind::Weights.code()))
        );

        let mut bad = sealed.clone();
        bad[11] = 1;
        assert_eq!(
            open(&bad, ArtifactKind::Weights),
            Err(ContainerError::BadFlags(1))
        );

        let mut bad = sealed.clone();
        bad[12] ^= 0x01;
        assert!(matches!(
            open(&bad, ArtifactKind::Weights),
            Err(ContainerError::LengthMismatch { .. })
        ));

        let mut bad = sealed.clone();
        *bad.last_mut().unwrap() ^= 0x80;
        assert_eq!(
            open(&bad, ArtifactKind::Weights),
            Err(ContainerError::ChecksumMismatch)
        );

        // Truncating the payload shows up as a length mismatch.
        let short = &sealed[..sealed.len() - 1];
        assert!(matches!(
            open(short, ArtifactKind::Weights),
            Err(ContainerError::LengthMismatch { .. })
        ));
    }
}
