//! Content-addressed store keys.
//!
//! A [`StoreKey`] is the 128-bit digest of a circuit payload — netlist
//! text, netlist format tag, and backend cache tag — produced by two
//! independent 64-bit FNV-1a streams. The scheme (offsets, prime, field
//! order, NUL separators) is shared with `relogic-serve`'s in-memory
//! `ArtifactKey`, which delegates here, so a key computed by the service
//! and a key computed offline by `relogic cache warm` can never diverge.

use std::fmt;

/// 64-bit FNV-1a over one byte stream.
///
/// Every step multiplies by an odd prime (invertible mod 2^64) after a
/// byte XOR, so any single-byte change to the stream always changes the
/// final state — the property the single-byte-flip fuzz suite pins.
#[derive(Clone, Copy)]
pub(crate) struct Fnv64 {
    pub(crate) state: u64,
}

impl Fnv64 {
    pub(crate) const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    pub(crate) const PRIME: u64 = 0x0000_0100_0000_01b3;
    /// XOR applied to [`Fnv64::OFFSET`] to seed the second stream.
    pub(crate) const OFFSET_XOR: u64 = 0x5bd1_e995_9d1b_a6d5;

    pub(crate) fn new(offset: u64) -> Self {
        Fnv64 { state: offset }
    }

    pub(crate) fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(Self::PRIME);
        }
    }
}

/// Dual-FNV checksum of an arbitrary byte slice (container payloads).
#[must_use]
pub(crate) fn checksum(payload: &[u8]) -> (u64, u64) {
    let mut a = Fnv64::new(Fnv64::OFFSET);
    let mut b = Fnv64::new(Fnv64::OFFSET ^ Fnv64::OFFSET_XOR);
    a.write(payload);
    b.write(payload);
    (a.state, b.state)
}

/// The 128-bit content address of a circuit's artifacts.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StoreKey {
    a: u64,
    b: u64,
}

impl StoreKey {
    /// Digests a circuit payload. `format_tag` is the netlist format's
    /// wire tag (`"bench"`, `"blif"`, `"verilog"`), `backend_tag` the
    /// backend cache tag (`"bdd"`, `"sim:{patterns}:{seed}"`), `netlist`
    /// the full netlist text.
    #[must_use]
    pub fn digest(format_tag: &str, backend_tag: &str, netlist: &str) -> StoreKey {
        // Two FNV streams with different offsets ≈ a 128-bit digest;
        // adversarial collisions are out of scope (the store is a
        // performance layer, not an integrity boundary), accidental ones
        // are vanishingly unlikely.
        let mut a = Fnv64::new(Fnv64::OFFSET);
        let mut b = Fnv64::new(Fnv64::OFFSET ^ Fnv64::OFFSET_XOR);
        for stream in [&mut a, &mut b] {
            stream.write(format_tag.as_bytes());
            stream.write(b"\x00");
            stream.write(backend_tag.as_bytes());
            stream.write(b"\x00");
            stream.write(netlist.as_bytes());
        }
        StoreKey {
            a: a.state,
            b: b.state,
        }
    }

    /// Rebuilds a key from its two 64-bit words (for callers that already
    /// hold an equivalent digest, like the serve cache's `ArtifactKey`).
    #[must_use]
    pub fn from_words(a: u64, b: u64) -> StoreKey {
        StoreKey { a, b }
    }

    /// The key's two 64-bit words, in `(a, b)` order.
    #[must_use]
    pub fn words(&self) -> (u64, u64) {
        (self.a, self.b)
    }

    /// The 32-character lowercase hex form used as the on-disk file stem.
    #[must_use]
    pub fn hex(&self) -> String {
        format!("{:016x}{:016x}", self.a, self.b)
    }

    /// Parses the [`StoreKey::hex`] form; `None` unless exactly 32 lowercase
    /// hex digits.
    #[must_use]
    pub fn parse_hex(s: &str) -> Option<StoreKey> {
        if s.len() != 32
            || !s
                .bytes()
                .all(|b| b.is_ascii_digit() || (b'a'..=b'f').contains(&b))
        {
            return None;
        }
        let a = u64::from_str_radix(&s[..16], 16).ok()?;
        let b = u64::from_str_radix(&s[16..], 16).ok()?;
        Some(StoreKey { a, b })
    }
}

impl fmt::Debug for StoreKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "StoreKey({})", self.hex())
    }
}

impl fmt::Display for StoreKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.hex())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_is_deterministic_and_field_sensitive() {
        let k = StoreKey::digest("bench", "bdd", "INPUT(a)\n");
        assert_eq!(k, StoreKey::digest("bench", "bdd", "INPUT(a)\n"));
        assert_ne!(k, StoreKey::digest("blif", "bdd", "INPUT(a)\n"));
        assert_ne!(k, StoreKey::digest("bench", "sim:1024:7", "INPUT(a)\n"));
        assert_ne!(k, StoreKey::digest("bench", "bdd", "INPUT(b)\n"));
    }

    #[test]
    fn hex_round_trips() {
        let k = StoreKey::digest("bench", "bdd", "x");
        let hex = k.hex();
        assert_eq!(hex.len(), 32);
        assert_eq!(StoreKey::parse_hex(&hex), Some(k));
        assert_eq!(StoreKey::parse_hex("zz"), None);
        assert_eq!(StoreKey::parse_hex(&hex.to_uppercase()), None);
    }

    #[test]
    fn checksum_differs_on_any_single_byte_change() {
        let payload = b"the quick brown fox".to_vec();
        let base = checksum(&payload);
        for i in 0..payload.len() {
            for bit in 0..8u8 {
                let mut mutated = payload.clone();
                mutated[i] ^= 1 << bit;
                assert_ne!(checksum(&mutated), base, "byte {i} bit {bit}");
            }
        }
    }
}
