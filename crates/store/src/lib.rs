//! # relogic-store
//!
//! Versioned, checksummed, crash-safe on-disk artifact store for the
//! relogic suite.
//!
//! The serve daemon's artifact cache is fast but volatile: every restart
//! re-pays the full symbolic-analysis cost of each circuit. This crate
//! persists the three expensive, ε-independent artifacts — the compiled
//! [`CircuitTape`](relogic_sim::CircuitTape), the
//! [`Weights`](relogic::Weights), and the
//! [`ObservabilityMatrix`](relogic::ObservabilityMatrix) — keyed by the
//! same 128-bit content address the in-memory cache uses, alongside a
//! small provenance record (netlist text + format + backend) that lets
//! `relogic cache warm` recompute everything offline.
//!
//! Design rules, in priority order:
//!
//! 1. **Never a wrong answer.** Every container carries a dual-FNV-128
//!    checksum verified before deserialization, and decoded values are
//!    revalidated structurally (`from_parts`). Anything suspect is
//!    quarantined (renamed `*.corrupt`) and recomputed — a disk hit is
//!    bit-identical to a recompute or it does not happen.
//! 2. **Crash-safe.** Writes are temp-file + fsync + atomic rename +
//!    directory fsync; a crash leaves the old state or the new state.
//! 3. **Optional.** Every failure mode degrades to recomputation; the
//!    store is a performance layer, not a correctness dependency.
//!
//! See `DESIGN.md` §15 for the on-disk format and recovery semantics.

mod codec;
mod container;
mod key;
mod store;

pub use codec::{
    decode_estimate, decode_meta, decode_observability, decode_tape, decode_weights,
    encode_estimate, encode_meta, encode_observability, encode_tape, encode_weights, ArtifactMeta,
};
pub use container::{open, seal, ArtifactKind, ContainerError, FORMAT_VERSION, HEADER_LEN, MAGIC};
pub use key::StoreKey;
pub use store::{
    GcReport, Loaded, LsEntry, Store, StoreCounters, StoreCountersSnapshot, StoreError,
    VerifyReport,
};
