//! The on-disk store: atomic writes, verified reads, quarantine, and the
//! offline maintenance operations behind `relogic cache`.
//!
//! Layout: a flat directory of `<keyhex32>.<ext>` containers (see
//! [`crate::container`]). Writes go through temp-file + fsync + atomic
//! rename + directory fsync, so a crash at any instant leaves either the
//! old state or the new state — never a half-written artifact under the
//! final name. Reads verify the full container before deserializing;
//! anything that fails is renamed to `<file>.corrupt` (quarantine), a
//! counter is bumped, one line goes to stderr, and the caller recomputes.

use crate::codec::{
    decode_estimate, decode_meta, decode_observability, decode_tape, decode_weights,
    encode_estimate, encode_meta, encode_observability, encode_tape, encode_weights, ArtifactMeta,
};
use crate::container::{self, ArtifactKind, ContainerError};
use crate::key::StoreKey;
use relogic::{ObservabilityMatrix, Weights};
use relogic_estimate::PropagationEstimate;
use relogic_sim::CircuitTape;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

#[cfg(any(test, feature = "chaos"))]
use relogic_sim::chaos::{Chaos, ChaosSite};
#[cfg(any(test, feature = "chaos"))]
use std::sync::Arc;

/// Outcome of a verified read.
#[derive(Debug)]
pub enum Loaded<T> {
    /// The artifact verified bit-exact and deserialized.
    Hit(T),
    /// No file for this key/kind.
    Miss,
    /// A file existed but failed verification or deserialization; it has
    /// been renamed to `*.corrupt` and the caller must recompute.
    Quarantined(ContainerError),
}

impl<T> Loaded<T> {
    /// The hit value, if any.
    pub fn hit(self) -> Option<T> {
        match self {
            Loaded::Hit(v) => Some(v),
            Loaded::Miss | Loaded::Quarantined(_) => None,
        }
    }
}

/// An I/O failure talking to the store directory. Verification failures
/// are NOT errors (they quarantine and surface as
/// [`Loaded::Quarantined`]); this covers the filesystem refusing us.
#[derive(Debug)]
pub struct StoreError {
    /// What the store was doing (`"write"`, `"read"`, `"rename"`, ...).
    pub op: &'static str,
    /// The path involved.
    pub path: PathBuf,
    /// The underlying error.
    pub source: io::Error,
}

impl StoreError {
    fn new(op: &'static str, path: &Path, source: io::Error) -> StoreError {
        StoreError {
            op,
            path: path.to_path_buf(),
            source,
        }
    }

    /// The underlying [`io::ErrorKind`], which the serve degradation
    /// policy inspects (`PermissionDenied`/`StorageFull`/`NotFound` are
    /// persistent; anything else is treated as transient).
    #[must_use]
    pub fn kind(&self) -> io::ErrorKind {
        self.source.kind()
    }
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "store {} failed on {}: {}",
            self.op,
            self.path.display(),
            self.source
        )
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.source)
    }
}

/// Monotonic store counters, surfaced through serve stats and
/// `cache verify`.
#[derive(Debug, Default)]
pub struct StoreCounters {
    hits: AtomicU64,
    misses: AtomicU64,
    quarantined: AtomicU64,
    writes: AtomicU64,
}

/// A point-in-time copy of [`StoreCounters`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StoreCountersSnapshot {
    /// Verified reads that returned an artifact.
    pub hits: u64,
    /// Reads that found no file.
    pub misses: u64,
    /// Files renamed to `*.corrupt` after failing verification.
    pub quarantined: u64,
    /// Containers successfully written (post-rename).
    pub writes: u64,
}

impl StoreCounters {
    fn snapshot(&self) -> StoreCountersSnapshot {
        StoreCountersSnapshot {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            quarantined: self.quarantined.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
        }
    }
}

/// One artifact file found by [`Store::ls`].
#[derive(Clone, Debug)]
pub struct LsEntry {
    /// The content-addressed key (file stem).
    pub key: StoreKey,
    /// What the container holds, per its extension.
    pub kind: ArtifactKind,
    /// File size in bytes (header + payload).
    pub bytes: u64,
}

/// Outcome of [`Store::verify`] over a whole directory.
#[derive(Clone, Debug, Default)]
pub struct VerifyReport {
    /// Containers that verified and deserialized cleanly.
    pub ok: u64,
    /// Containers quarantined this pass, with the failing path and reason.
    pub quarantined: Vec<(PathBuf, ContainerError)>,
}

/// Outcome of [`Store::gc`].
#[derive(Clone, Debug, Default)]
pub struct GcReport {
    /// `*.tmp` and `*.corrupt` files removed.
    pub removed: u64,
    /// Bytes those files occupied.
    pub bytes_freed: u64,
}

/// A handle to one store directory.
pub struct Store {
    root: PathBuf,
    counters: StoreCounters,
    /// Quieten the per-quarantine stderr line (tests).
    quiet: bool,
    #[cfg(any(test, feature = "chaos"))]
    chaos: Option<Arc<Chaos>>,
}

impl std::fmt::Debug for Store {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Store").field("root", &self.root).finish()
    }
}

impl Store {
    /// Opens (creating if needed) the store directory at `root`.
    ///
    /// # Errors
    ///
    /// [`StoreError`] when the directory cannot be created or is not
    /// usable as a directory.
    pub fn open(root: impl Into<PathBuf>) -> Result<Store, StoreError> {
        let root = root.into();
        fs::create_dir_all(&root).map_err(|e| StoreError::new("create dir", &root, e))?;
        Ok(Store {
            root,
            counters: StoreCounters::default(),
            quiet: false,
            #[cfg(any(test, feature = "chaos"))]
            chaos: None,
        })
    }

    /// Suppresses the one-line stderr report on quarantine (test support;
    /// counters and renames still happen).
    #[must_use]
    pub fn quiet(mut self) -> Store {
        self.quiet = true;
        self
    }

    /// Attaches a chaos handle; disk sites fire inside write/read paths.
    #[cfg(any(test, feature = "chaos"))]
    pub fn set_chaos(&mut self, chaos: Arc<Chaos>) {
        self.chaos = Some(chaos);
    }

    /// The directory this store manages.
    #[must_use]
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Current counter values.
    #[must_use]
    pub fn counters(&self) -> StoreCountersSnapshot {
        self.counters.snapshot()
    }

    /// Total bytes of live artifact containers on disk (excludes `*.tmp`
    /// and `*.corrupt`).
    ///
    /// # Errors
    ///
    /// [`StoreError`] when the directory cannot be scanned.
    pub fn bytes_on_disk(&self) -> Result<u64, StoreError> {
        Ok(self.ls()?.iter().map(|e| e.bytes).sum())
    }

    fn path_of(&self, key: StoreKey, kind: ArtifactKind) -> PathBuf {
        self.root
            .join(format!("{}.{}", key.hex(), kind.extension()))
    }

    // ----- writes ---------------------------------------------------------

    /// Persists a provenance record.
    ///
    /// # Errors
    ///
    /// [`StoreError`] on any filesystem failure (the artifact is simply
    /// not persisted; nothing half-written is left under the final name).
    pub fn save_meta(&self, key: StoreKey, meta: &ArtifactMeta) -> Result<(), StoreError> {
        self.save(key, ArtifactKind::Meta, &encode_meta(meta))
    }

    /// Persists a compiled tape.
    ///
    /// # Errors
    ///
    /// See [`Store::save_meta`].
    pub fn save_tape(&self, key: StoreKey, tape: &CircuitTape) -> Result<(), StoreError> {
        self.save(key, ArtifactKind::Tape, &encode_tape(tape))
    }

    /// Persists weight vectors.
    ///
    /// # Errors
    ///
    /// See [`Store::save_meta`].
    pub fn save_weights(&self, key: StoreKey, weights: &Weights) -> Result<(), StoreError> {
        self.save(key, ArtifactKind::Weights, &encode_weights(weights))
    }

    /// Persists an observability matrix.
    ///
    /// # Errors
    ///
    /// See [`Store::save_meta`].
    pub fn save_observability(
        &self,
        key: StoreKey,
        matrix: &ObservabilityMatrix,
    ) -> Result<(), StoreError> {
        self.save(
            key,
            ArtifactKind::Observability,
            &encode_observability(matrix),
        )
    }

    /// Persists a propagation estimate.
    ///
    /// # Errors
    ///
    /// See [`Store::save_meta`].
    pub fn save_estimate(
        &self,
        key: StoreKey,
        estimate: &PropagationEstimate,
    ) -> Result<(), StoreError> {
        self.save(key, ArtifactKind::Estimator, &encode_estimate(estimate))
    }

    fn save(&self, key: StoreKey, kind: ArtifactKind, payload: &[u8]) -> Result<(), StoreError> {
        let bytes = container::seal(kind, payload);
        let final_path = self.path_of(key, kind);
        self.write_atomic(&final_path, &bytes)?;
        self.counters.writes.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// temp file + fsync + atomic rename + directory fsync. Chaos disk
    /// sites model the crash points: a short write that tears the FINAL
    /// file (as a non-atomic writer would), a completed temp file whose
    /// rename never happens, and an fsync whose failure is reported after
    /// the data reached the kernel.
    fn write_atomic(&self, final_path: &Path, bytes: &[u8]) -> Result<(), StoreError> {
        #[cfg(any(test, feature = "chaos"))]
        if let Some(chaos) = &self.chaos {
            if chaos.should(ChaosSite::DiskShortWrite) {
                // Simulate a crash mid-way through a NON-atomic write to
                // the final path: the next read must quarantine this.
                let _ = fs::write(final_path, &bytes[..bytes.len() / 2]);
                return Err(StoreError::new(
                    "write",
                    final_path,
                    injected("disk_short_write"),
                ));
            }
        }

        // Unique per write: a crashed writer's residue is never reused,
        // and two processes sharing the directory cannot clobber each
        // other's in-flight temp files.
        static WRITE_SEQ: AtomicU64 = AtomicU64::new(0);
        let tmp_path = {
            let mut name = final_path.as_os_str().to_os_string();
            name.push(format!(
                ".{}-{}.tmp",
                std::process::id(),
                WRITE_SEQ.fetch_add(1, Ordering::Relaxed)
            ));
            PathBuf::from(name)
        };
        let mut tmp = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(&tmp_path)
            .map_err(|e| StoreError::new("create temp", &tmp_path, e))?;
        tmp.write_all(bytes)
            .map_err(|e| StoreError::new("write", &tmp_path, e))?;
        tmp.sync_all()
            .map_err(|e| StoreError::new("fsync", &tmp_path, e))?;
        drop(tmp);

        #[cfg(any(test, feature = "chaos"))]
        if let Some(chaos) = &self.chaos {
            if chaos.should(ChaosSite::DiskTornRename) {
                // Crash between fsync and rename: the temp file survives
                // (gc removes it) but the final name is untouched.
                return Err(StoreError::new(
                    "rename",
                    final_path,
                    injected("disk_torn_rename"),
                ));
            }
        }

        fs::rename(&tmp_path, final_path).map_err(|e| {
            let _ = fs::remove_file(&tmp_path);
            StoreError::new("rename", final_path, e)
        })?;

        // Make the rename itself durable.
        let dir_sync = File::open(&self.root).and_then(|d| d.sync_all());

        #[cfg(any(test, feature = "chaos"))]
        if let Some(chaos) = &self.chaos {
            if chaos.should(ChaosSite::DiskFsyncFail) {
                // Data and rename both landed; only the durability
                // confirmation is lost. Callers treat this as a failed
                // write, but a subsequent read may legitimately hit.
                return Err(StoreError::new(
                    "fsync dir",
                    &self.root,
                    injected("disk_fsync_fail"),
                ));
            }
        }

        dir_sync.map_err(|e| StoreError::new("fsync dir", &self.root, e))?;
        Ok(())
    }

    // ----- verified reads -------------------------------------------------

    /// Loads a provenance record.
    ///
    /// # Errors
    ///
    /// [`StoreError`] only for filesystem failures; a corrupt file is
    /// [`Loaded::Quarantined`], not an error.
    pub fn load_meta(&self, key: StoreKey) -> Result<Loaded<ArtifactMeta>, StoreError> {
        self.load(key, ArtifactKind::Meta, decode_meta)
    }

    /// Loads a compiled tape.
    ///
    /// # Errors
    ///
    /// See [`Store::load_meta`].
    pub fn load_tape(&self, key: StoreKey) -> Result<Loaded<CircuitTape>, StoreError> {
        self.load(key, ArtifactKind::Tape, decode_tape)
    }

    /// Loads weight vectors.
    ///
    /// # Errors
    ///
    /// See [`Store::load_meta`].
    pub fn load_weights(&self, key: StoreKey) -> Result<Loaded<Weights>, StoreError> {
        self.load(key, ArtifactKind::Weights, decode_weights)
    }

    /// Loads an observability matrix.
    ///
    /// # Errors
    ///
    /// See [`Store::load_meta`].
    pub fn load_observability(
        &self,
        key: StoreKey,
    ) -> Result<Loaded<ObservabilityMatrix>, StoreError> {
        self.load(key, ArtifactKind::Observability, decode_observability)
    }

    /// Loads a propagation estimate.
    ///
    /// # Errors
    ///
    /// See [`Store::load_meta`].
    pub fn load_estimate(&self, key: StoreKey) -> Result<Loaded<PropagationEstimate>, StoreError> {
        self.load(key, ArtifactKind::Estimator, decode_estimate)
    }

    fn load<T>(
        &self,
        key: StoreKey,
        kind: ArtifactKind,
        decode: impl FnOnce(&[u8]) -> Result<T, ContainerError>,
    ) -> Result<Loaded<T>, StoreError> {
        let path = self.path_of(key, kind);
        let mut bytes = Vec::new();
        match File::open(&path) {
            Ok(mut f) => f
                .read_to_end(&mut bytes)
                .map(|_| ())
                .map_err(|e| StoreError::new("read", &path, e))?,
            Err(e) if e.kind() == io::ErrorKind::NotFound => {
                self.counters.misses.fetch_add(1, Ordering::Relaxed);
                return Ok(Loaded::Miss);
            }
            Err(e) => return Err(StoreError::new("open", &path, e)),
        }

        #[cfg(any(test, feature = "chaos"))]
        if let Some(chaos) = &self.chaos {
            if chaos.should(ChaosSite::DiskBitFlip) && !bytes.is_empty() {
                // Deterministic single-bit rot in the read buffer; the
                // checksum must reject it and the store must quarantine.
                let byte = bytes.len() / 2;
                bytes[byte] ^= 0x08;
            }
        }

        match container::open(&bytes, kind).and_then(decode) {
            Ok(value) => {
                self.counters.hits.fetch_add(1, Ordering::Relaxed);
                Ok(Loaded::Hit(value))
            }
            Err(why) => {
                self.quarantine(&path, &why)?;
                Ok(Loaded::Quarantined(why))
            }
        }
    }

    /// Renames a failed container to `<file>.corrupt`, counts it, and
    /// reports one line to stderr. Never serves or re-reads the bytes.
    fn quarantine(&self, path: &Path, why: &ContainerError) -> Result<(), StoreError> {
        let corrupt_path = {
            let mut name = path.as_os_str().to_os_string();
            name.push(".corrupt");
            PathBuf::from(name)
        };
        // A second reader may have quarantined the same file already; a
        // NotFound rename is success, anything else keeps the file out of
        // circulation by deleting it.
        match fs::rename(path, &corrupt_path) {
            Ok(()) => {}
            Err(e) if e.kind() == io::ErrorKind::NotFound => {}
            Err(_) => {
                let _ = fs::remove_file(path);
            }
        }
        self.counters.quarantined.fetch_add(1, Ordering::Relaxed);
        if !self.quiet {
            eprintln!(
                "relogic-store: quarantined {} ({why}); recomputing",
                path.display()
            );
        }
        Ok(())
    }

    // ----- offline maintenance (relogic cache) ----------------------------

    /// Lists every live artifact container in the directory, sorted by
    /// key then kind. Unknown files, `*.tmp`, and `*.corrupt` are skipped.
    ///
    /// # Errors
    ///
    /// [`StoreError`] when the directory cannot be read.
    pub fn ls(&self) -> Result<Vec<LsEntry>, StoreError> {
        let read =
            fs::read_dir(&self.root).map_err(|e| StoreError::new("read dir", &self.root, e))?;
        let mut entries = Vec::new();
        for item in read {
            let item = item.map_err(|e| StoreError::new("read dir", &self.root, e))?;
            let name = item.file_name();
            let Some(name) = name.to_str() else { continue };
            let Some((stem, ext)) = name.split_once('.') else {
                continue;
            };
            let (Some(key), Some(kind)) =
                (StoreKey::parse_hex(stem), ArtifactKind::from_extension(ext))
            else {
                continue;
            };
            let meta = item
                .metadata()
                .map_err(|e| StoreError::new("stat", &item.path(), e))?;
            entries.push(LsEntry {
                key,
                kind,
                bytes: meta.len(),
            });
        }
        entries.sort_by_key(|e| (e.key, e.kind.code()));
        Ok(entries)
    }

    /// Verifies every container in the directory end to end (header,
    /// checksum, deserialize). Corrupt files are quarantined exactly as a
    /// serving read would.
    ///
    /// # Errors
    ///
    /// [`StoreError`] when the directory itself cannot be scanned.
    pub fn verify(&self) -> Result<VerifyReport, StoreError> {
        fn discard<T>(loaded: Loaded<T>) -> Loaded<()> {
            match loaded {
                Loaded::Hit(_) => Loaded::Hit(()),
                Loaded::Miss => Loaded::Miss,
                Loaded::Quarantined(why) => Loaded::Quarantined(why),
            }
        }
        let mut report = VerifyReport::default();
        for entry in self.ls()? {
            let outcome = match entry.kind {
                ArtifactKind::Meta => discard(self.load_meta(entry.key)?),
                ArtifactKind::Tape => discard(self.load_tape(entry.key)?),
                ArtifactKind::Weights => discard(self.load_weights(entry.key)?),
                ArtifactKind::Observability => discard(self.load_observability(entry.key)?),
                ArtifactKind::Estimator => discard(self.load_estimate(entry.key)?),
            };
            match outcome {
                Loaded::Hit(()) => report.ok += 1,
                // Listed a moment ago but gone now: racing writer/gc; skip.
                Loaded::Miss => {}
                Loaded::Quarantined(why) => {
                    report
                        .quarantined
                        .push((self.path_of(entry.key, entry.kind), why));
                }
            }
        }
        Ok(report)
    }

    /// Removes `*.tmp` residue (crashed writes) and `*.corrupt` files
    /// (already out of circulation). Live artifacts are never touched.
    ///
    /// # Errors
    ///
    /// [`StoreError`] when the directory cannot be scanned or a file
    /// cannot be removed.
    pub fn gc(&self) -> Result<GcReport, StoreError> {
        let read =
            fs::read_dir(&self.root).map_err(|e| StoreError::new("read dir", &self.root, e))?;
        let mut report = GcReport::default();
        for item in read {
            let item = item.map_err(|e| StoreError::new("read dir", &self.root, e))?;
            let name = item.file_name();
            let Some(name) = name.to_str() else { continue };
            if !(name.ends_with(".tmp") || name.ends_with(".corrupt")) {
                continue;
            }
            let path = item.path();
            let bytes = item.metadata().map(|m| m.len()).unwrap_or(0);
            fs::remove_file(&path).map_err(|e| StoreError::new("remove", &path, e))?;
            report.removed += 1;
            report.bytes_freed += bytes;
        }
        Ok(report)
    }

    /// Every key that has a provenance record, for `cache warm` to walk.
    ///
    /// # Errors
    ///
    /// [`StoreError`] when the directory cannot be scanned.
    pub fn meta_keys(&self) -> Result<Vec<StoreKey>, StoreError> {
        Ok(self
            .ls()?
            .into_iter()
            .filter(|e| e.kind == ArtifactKind::Meta)
            .map(|e| e.key)
            .collect())
    }
}

#[cfg(any(test, feature = "chaos"))]
fn injected(site: &str) -> io::Error {
    // Deliberately NOT PermissionDenied/StorageFull/NotFound: injected
    // faults model transient failures and must not trip the serve layer's
    // persistent-degradation policy.
    io::Error::other(format!("chaos: injected {site} fault"))
}
