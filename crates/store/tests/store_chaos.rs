//! Chaos crash simulations for the on-disk artifact store.
//!
//! Requires the `chaos` feature: the store's disk-fault hooks (short
//! writes, torn renames, fsync failure, read-time bit flips) are compiled
//! out of default builds. Each test injects a deterministic fault, then
//! "restarts" by opening a fresh `Store` on the same directory and
//! asserts the store recovers: residue is quarantined or collected and
//! correct results are served after recompute.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use relogic::{Backend, InputDistribution, ObservabilityMatrix, Weights};
use relogic_netlist::Circuit;
use relogic_sim::chaos::{Chaos, ChaosConfig, ChaosSite, SitePolicy};
use relogic_sim::CircuitTape;
use relogic_store::{encode_tape, Loaded, Store, StoreKey};
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Per-test unique temp directory (tests run concurrently in one binary).
fn temp_dir(tag: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let n = SEQ.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "relogic-store-chaos-{}-{tag}-{n}",
        std::process::id()
    ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn full_adder() -> Circuit {
    let mut c = Circuit::new("fa");
    let a = c.add_input("a");
    let b = c.add_input("b");
    let cin = c.add_input("cin");
    let s1 = c.xor([a, b]);
    let sum = c.xor([s1, cin]);
    let c1 = c.and([a, b]);
    let c2 = c.and([s1, cin]);
    let cout = c.or([c1, c2]);
    c.add_output("sum", sum);
    c.add_output("cout", cout);
    c
}

fn adder_key() -> StoreKey {
    StoreKey::digest("bench", "bdd", "synthetic-full-adder")
}

// ---------------------------------------------------------------------------
// 3. Chaos crash simulations
// ---------------------------------------------------------------------------

fn chaos_store(dir: &Path, site: ChaosSite, limit: u64) -> Store {
    let mut store = Store::open(dir).unwrap().quiet();
    store.set_chaos(Chaos::new(
        ChaosConfig::quiet(0xD15C).site(site, SitePolicy::limited(1.0, limit)),
    ));
    store
}

#[test]
fn torn_rename_leaves_no_final_file_and_restart_recovers() {
    let dir = temp_dir("torn");
    let store = chaos_store(&dir, ChaosSite::DiskTornRename, 1);
    let tape = CircuitTape::compile(&full_adder());
    let key = adder_key();

    // The kill-mid-write: temp file complete, rename never happens.
    let err = store.save_tape(key, &tape).unwrap_err();
    assert!(err.to_string().contains("disk_torn_rename"));
    assert!(!dir.join(format!("{}.tape", key.hex())).exists());

    // Restart: a fresh store on the same directory sees a clean miss,
    // recomputes, and the retry (budget exhausted) succeeds.
    let restarted = Store::open(&dir).unwrap().quiet();
    assert!(matches!(restarted.load_tape(key).unwrap(), Loaded::Miss));
    restarted.save_tape(key, &tape).unwrap();
    let loaded = restarted.load_tape(key).unwrap().hit().unwrap();
    assert_eq!(encode_tape(&loaded), encode_tape(&tape));

    // The crashed write's residue is invisible to ls and removed by gc.
    assert_eq!(restarted.ls().unwrap().len(), 1);
    let report = restarted.gc().unwrap();
    assert_eq!(report.removed, 1, "one *.tmp from the torn rename");
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn short_write_tears_the_final_file_and_restart_quarantines_it() {
    let dir = temp_dir("short");
    let store = chaos_store(&dir, ChaosSite::DiskShortWrite, 1);
    let tape = CircuitTape::compile(&full_adder());
    let key = adder_key();

    // A non-atomic writer dies halfway through the final file.
    let err = store.save_tape(key, &tape).unwrap_err();
    assert!(err.to_string().contains("disk_short_write"));
    assert!(dir.join(format!("{}.tape", key.hex())).exists());

    // Restart: the torn file is detected, quarantined, and never served.
    let restarted = Store::open(&dir).unwrap().quiet();
    assert!(matches!(
        restarted.load_tape(key).unwrap(),
        Loaded::Quarantined(_)
    ));
    assert_eq!(restarted.counters().quarantined, 1);
    assert!(dir.join(format!("{}.tape.corrupt", key.hex())).exists());

    // Recompute + rewrite heals; gc sweeps the quarantined residue.
    restarted.save_tape(key, &tape).unwrap();
    let loaded = restarted.load_tape(key).unwrap().hit().unwrap();
    assert_eq!(encode_tape(&loaded), encode_tape(&tape));
    assert_eq!(restarted.gc().unwrap().removed, 1);
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn fsync_failure_reports_an_error_but_the_data_landed() {
    let dir = temp_dir("fsync");
    let store = chaos_store(&dir, ChaosSite::DiskFsyncFail, 1);
    let tape = CircuitTape::compile(&full_adder());
    let key = adder_key();

    let err = store.save_tape(key, &tape).unwrap_err();
    assert!(err.to_string().contains("disk_fsync_fail"));

    // The rename completed before the (simulated) fsync verdict, so a
    // read legitimately hits — fsync failure loses durability, not
    // atomicity.
    let loaded = store.load_tape(key).unwrap().hit().unwrap();
    assert_eq!(encode_tape(&loaded), encode_tape(&tape));
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn read_time_bit_flips_are_always_quarantined_never_served_wrong() {
    let dir = temp_dir("bitflip");
    {
        let circuit = full_adder();
        let store = Store::open(&dir).unwrap().quiet();
        let key = adder_key();
        store
            .save_tape(key, &CircuitTape::compile(&circuit))
            .unwrap();
        store
            .save_weights(
                key,
                &Weights::compute(&circuit, &InputDistribution::Uniform, Backend::Bdd),
            )
            .unwrap();
        store
            .save_observability(
                key,
                &ObservabilityMatrix::compute(&circuit, &InputDistribution::Uniform, Backend::Bdd),
            )
            .unwrap();
    }
    let store = chaos_store(&dir, ChaosSite::DiskBitFlip, u64::MAX);
    let key = adder_key();
    assert!(matches!(
        store.load_tape(key).unwrap(),
        Loaded::Quarantined(_)
    ));
    assert!(matches!(
        store.load_weights(key).unwrap(),
        Loaded::Quarantined(_)
    ));
    assert!(matches!(
        store.load_observability(key).unwrap(),
        Loaded::Quarantined(_)
    ));
    assert_eq!(store.counters().quarantined, 3);
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn chaos_disk_profile_storm_never_serves_a_wrong_answer() {
    // Drive the full disk profile (all four sites, seeded) through many
    // write/read cycles: every read either hits bit-identical, misses, or
    // quarantines — and after the budgets drain the store heals.
    let dir = temp_dir("storm");
    let tape = CircuitTape::compile(&full_adder());
    let tape_enc = encode_tape(&tape);
    let key = adder_key();

    let mut store = Store::open(&dir).unwrap().quiet();
    store.set_chaos(Chaos::new(ChaosConfig::disk_profile(7)));
    for _ in 0..64 {
        let _ = store.save_tape(key, &tape);
        match store.load_tape(key).unwrap() {
            Loaded::Hit(t) => assert_eq!(encode_tape(&t), tape_enc, "wrong answer served"),
            Loaded::Miss | Loaded::Quarantined(_) => {}
        }
    }
    // Budgets exhausted (bit-flip site is unlimited but probabilistic;
    // write sites are budgeted): a final write+read settles to a hit.
    let healed = Store::open(&dir).unwrap().quiet();
    healed.save_tape(key, &tape).unwrap();
    assert_eq!(
        encode_tape(&healed.load_tape(key).unwrap().hit().unwrap()),
        tape_enc
    );
    let _ = healed.gc().unwrap();
    fs::remove_dir_all(&dir).unwrap();
}
