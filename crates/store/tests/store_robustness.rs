//! End-to-end robustness suite for the on-disk artifact store.
//!
//! Four contracts:
//!
//! 1. **Round trip** — every artifact type serializes and deserializes
//!    bit-identically for randomized circuits (f64s compared by bit
//!    pattern via the canonical encoding).
//! 2. **Never a wrong answer** — an exhaustive single-byte-flip fuzz over
//!    a complete small archive: every mutated container either loads
//!    bit-identical to the original or is rejected and quarantined.
//! 3. **Maintenance** — `verify` reports corruption, `gc` removes
//!    `*.tmp`/`*.corrupt` residue and nothing else.
//!
//! Chaos crash simulations (short writes, torn renames, fsync failure)
//! live in `store_chaos.rs`, gated on the `chaos` feature.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use proptest::collection;
use proptest::prelude::*;
use relogic::{Backend, InputDistribution, ObservabilityMatrix, Weights};
use relogic_estimate::PropagationEstimate;
use relogic_netlist::{Circuit, GateKind, NodeId};
use relogic_sim::CircuitTape;
use relogic_store::{
    encode_estimate, encode_observability, encode_tape, encode_weights, ArtifactMeta, Loaded,
    Store, StoreKey,
};
use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// Per-test unique temp directory (tests run concurrently in one binary).
fn temp_dir(tag: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let n = SEQ.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "relogic-store-test-{}-{tag}-{n}",
        std::process::id()
    ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// Recipe for one random gate: a kind selector plus two fanin selectors
/// (reduced modulo the number of already-built nodes).
#[derive(Clone, Debug)]
struct CircuitSeed {
    inputs: usize,
    gates: Vec<(u8, u32, u32)>,
    outputs: Vec<u32>,
}

fn arb_circuit() -> impl Strategy<Value = CircuitSeed> {
    (
        2usize..=8,
        collection::vec((any::<u8>(), any::<u32>(), any::<u32>()), 1..24),
        collection::vec(any::<u32>(), 1..4),
    )
        .prop_map(|(inputs, gates, outputs)| CircuitSeed {
            inputs,
            gates,
            outputs,
        })
}

fn build_circuit(seed: &CircuitSeed) -> Circuit {
    let mut c = Circuit::new("prop");
    for i in 0..seed.inputs {
        c.add_input(format!("x{i}"));
    }
    for &(kind_sel, a, b) in &seed.gates {
        let kinds = GateKind::LOGIC_KINDS;
        let kind = kinds[kind_sel as usize % kinds.len()];
        let n = u32::try_from(c.len()).unwrap();
        let fa = NodeId::from_index((a % n) as usize);
        let fb = NodeId::from_index((b % n) as usize);
        let fanins: Vec<NodeId> = if kind.accepts_arity(2) {
            vec![fa, fb]
        } else {
            vec![fa]
        };
        c.add_gate(kind, fanins).unwrap();
    }
    let n = u32::try_from(c.len()).unwrap();
    for (k, &sel) in seed.outputs.iter().enumerate() {
        c.add_output(format!("y{k}"), NodeId::from_index((sel % n) as usize));
    }
    c
}

fn full_adder() -> Circuit {
    let mut c = Circuit::new("fa");
    let a = c.add_input("a");
    let b = c.add_input("b");
    let cin = c.add_input("cin");
    let s1 = c.xor([a, b]);
    let sum = c.xor([s1, cin]);
    let c1 = c.and([a, b]);
    let c2 = c.and([s1, cin]);
    let cout = c.or([c1, c2]);
    c.add_output("sum", sum);
    c.add_output("cout", cout);
    c
}

fn adder_key() -> StoreKey {
    StoreKey::digest("bench", "bdd", "synthetic-full-adder")
}

/// Writes a complete archive (meta + tape + weights + observability +
/// estimator) for the full adder and returns the canonical encodings for
/// bit-identity checks.
fn populate(store: &Store) -> (Vec<u8>, Vec<u8>, Vec<u8>, Vec<u8>) {
    let circuit = full_adder();
    let key = adder_key();
    let tape = CircuitTape::compile(&circuit);
    let weights = Weights::compute(&circuit, &InputDistribution::Uniform, Backend::Bdd);
    let matrix = ObservabilityMatrix::compute(&circuit, &InputDistribution::Uniform, Backend::Bdd);
    let estimate = PropagationEstimate::try_compute(&circuit, &InputDistribution::Uniform).unwrap();
    store
        .save_meta(
            key,
            &ArtifactMeta {
                format_tag: "bench".into(),
                backend_tag: "bdd".into(),
                netlist: "synthetic-full-adder".into(),
            },
        )
        .unwrap();
    store.save_tape(key, &tape).unwrap();
    store.save_weights(key, &weights).unwrap();
    store.save_observability(key, &matrix).unwrap();
    store.save_estimate(key, &estimate).unwrap();
    (
        encode_tape(&tape),
        encode_weights(&weights),
        encode_observability(&matrix),
        encode_estimate(&estimate),
    )
}

// ---------------------------------------------------------------------------
// 1. Round-trip property tests
// ---------------------------------------------------------------------------

proptest! {
    #[test]
    fn tape_round_trips_bit_identically(seed in arb_circuit()) {
        let circuit = build_circuit(&seed);
        let tape = CircuitTape::compile(&circuit);
        let dir = temp_dir("tape-prop");
        let store = Store::open(&dir).unwrap().quiet();
        let key = StoreKey::digest("bench", "bdd", &format!("{seed:?}"));
        store.save_tape(key, &tape).unwrap();
        let loaded = store.load_tape(key).unwrap().hit().expect("hit");
        prop_assert_eq!(encode_tape(&tape), encode_tape(&loaded));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn weights_round_trip_bit_identically(seed in arb_circuit()) {
        let circuit = build_circuit(&seed);
        let weights = Weights::compute(&circuit, &InputDistribution::Uniform, Backend::Bdd);
        let dir = temp_dir("weights-prop");
        let store = Store::open(&dir).unwrap().quiet();
        let key = StoreKey::digest("bench", "bdd", &format!("{seed:?}"));
        store.save_weights(key, &weights).unwrap();
        let loaded = store.load_weights(key).unwrap().hit().expect("hit");
        // Canonical encoding compares every f64 by bit pattern.
        prop_assert_eq!(encode_weights(&weights), encode_weights(&loaded));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn observability_round_trips_bit_identically(seed in arb_circuit()) {
        let circuit = build_circuit(&seed);
        let matrix =
            ObservabilityMatrix::compute(&circuit, &InputDistribution::Uniform, Backend::Bdd);
        let dir = temp_dir("obs-prop");
        let store = Store::open(&dir).unwrap().quiet();
        let key = StoreKey::digest("bench", "bdd", &format!("{seed:?}"));
        store.save_observability(key, &matrix).unwrap();
        let loaded = store.load_observability(key).unwrap().hit().expect("hit");
        prop_assert_eq!(encode_observability(&matrix), encode_observability(&loaded));
        // Diagnostics survive the trip (BDD engine stats included).
        prop_assert_eq!(loaded.diagnostics(), matrix.diagnostics());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn estimate_round_trips_bit_identically(seed in arb_circuit()) {
        let circuit = build_circuit(&seed);
        let estimate =
            PropagationEstimate::try_compute(&circuit, &InputDistribution::Uniform).unwrap();
        let dir = temp_dir("est-prop");
        let store = Store::open(&dir).unwrap().quiet();
        let key = StoreKey::digest("bench", "bdd", &format!("{seed:?}"));
        store.save_estimate(key, &estimate).unwrap();
        let loaded = store.load_estimate(key).unwrap().hit().expect("hit");
        prop_assert_eq!(encode_estimate(&estimate), encode_estimate(&loaded));
        fs::remove_dir_all(&dir).unwrap();
    }
}

#[test]
fn meta_round_trips_through_a_store() {
    let dir = temp_dir("meta");
    let store = Store::open(&dir).unwrap().quiet();
    let key = adder_key();
    let meta = ArtifactMeta {
        format_tag: "blif".into(),
        backend_tag: "sim:4096:42".into(),
        netlist: ".model m\n.inputs a\n.outputs y\n".into(),
    };
    store.save_meta(key, &meta).unwrap();
    assert_eq!(store.load_meta(key).unwrap().hit().unwrap(), meta);
    fs::remove_dir_all(&dir).unwrap();
}

// ---------------------------------------------------------------------------
// 2. Exhaustive single-byte-flip fuzz: never a wrong answer
// ---------------------------------------------------------------------------

/// For every byte of every container in a complete archive, and every bit
/// of that byte: the mutated file must either be quarantined or load
/// bit-identical to the original. (With dual-FNV payload checksums and a
/// fully-validated header, every flip is in fact quarantined; the test
/// asserts the weaker disjunction the contract promises and additionally
/// counts that nothing wrong was ever served.)
#[test]
fn every_single_byte_flip_is_quarantined_or_bit_identical() {
    let dir = temp_dir("fuzz");
    let store = Store::open(&dir).unwrap().quiet();
    let (tape_enc, weights_enc, obs_enc, est_enc) = populate(&store);
    let key = adder_key();

    let files: Vec<PathBuf> = store
        .ls()
        .unwrap()
        .iter()
        .map(|e| dir.join(format!("{}.{}", e.key.hex(), e.kind.extension())))
        .collect();
    assert_eq!(
        files.len(),
        5,
        "meta + tape + weights + observability + estimator"
    );

    let mut mutations = 0u64;
    let mut served_identical = 0u64;
    for path in &files {
        let pristine = fs::read(path).unwrap();
        for byte in 0..pristine.len() {
            for bit in 0..8u8 {
                let mut mutated = pristine.clone();
                mutated[byte] ^= 1 << bit;
                fs::write(path, &mutated).unwrap();
                mutations += 1;

                let ext = path.extension().unwrap().to_str().unwrap();
                let outcome_identical = match ext {
                    "meta" => match store.load_meta(key).unwrap() {
                        Loaded::Hit(m) => Some(
                            m.format_tag == "bench"
                                && m.backend_tag == "bdd"
                                && m.netlist == "synthetic-full-adder",
                        ),
                        Loaded::Quarantined(_) => None,
                        Loaded::Miss => panic!("mutated file vanished"),
                    },
                    "tape" => match store.load_tape(key).unwrap() {
                        Loaded::Hit(t) => Some(encode_tape(&t) == tape_enc),
                        Loaded::Quarantined(_) => None,
                        Loaded::Miss => panic!("mutated file vanished"),
                    },
                    "wts" => match store.load_weights(key).unwrap() {
                        Loaded::Hit(w) => Some(encode_weights(&w) == weights_enc),
                        Loaded::Quarantined(_) => None,
                        Loaded::Miss => panic!("mutated file vanished"),
                    },
                    "obs" => match store.load_observability(key).unwrap() {
                        Loaded::Hit(o) => Some(encode_observability(&o) == obs_enc),
                        Loaded::Quarantined(_) => None,
                        Loaded::Miss => panic!("mutated file vanished"),
                    },
                    "est" => match store.load_estimate(key).unwrap() {
                        Loaded::Hit(e) => Some(encode_estimate(&e) == est_enc),
                        Loaded::Quarantined(_) => None,
                        Loaded::Miss => panic!("mutated file vanished"),
                    },
                    other => panic!("unexpected extension {other}"),
                };
                match outcome_identical {
                    // Served: must be bit-identical to the original.
                    Some(identical) => {
                        assert!(
                            identical,
                            "WRONG ANSWER served for {} byte {byte} bit {bit}",
                            path.display()
                        );
                        served_identical += 1;
                    }
                    // Quarantined: the file must be out of circulation.
                    None => {
                        assert!(
                            !path.exists(),
                            "quarantine left {} in place (byte {byte} bit {bit})",
                            path.display()
                        );
                    }
                }
                // Restore for the next mutation (quarantine renamed it away).
                fs::write(path, &pristine).unwrap();
            }
        }
    }

    assert!(
        mutations > 1000,
        "fuzz actually ran ({mutations} mutations)"
    );
    // Every header field and payload byte is covered by validation, so in
    // practice nothing mutated is ever served.
    assert_eq!(served_identical, 0, "checksum coverage has a hole");
    assert_eq!(store.counters().quarantined, mutations);
    fs::remove_dir_all(&dir).unwrap();
}

// ---------------------------------------------------------------------------
// 4. Offline maintenance
// ---------------------------------------------------------------------------

#[test]
fn ls_verify_and_gc_manage_a_mixed_directory() {
    let dir = temp_dir("maint");
    let store = Store::open(&dir).unwrap().quiet();
    populate(&store);
    let key = adder_key();

    // ls sees exactly the five live containers and bytes_on_disk matches.
    let entries = store.ls().unwrap();
    assert_eq!(entries.len(), 5);
    let total: u64 = entries.iter().map(|e| e.bytes).sum();
    assert_eq!(store.bytes_on_disk().unwrap(), total);
    assert_eq!(store.meta_keys().unwrap(), vec![key]);

    // A clean archive verifies clean.
    let report = store.verify().unwrap();
    assert_eq!(report.ok, 5);
    assert!(report.quarantined.is_empty());

    // Corrupt one file: verify finds it, quarantines it, and reports why.
    let victim = dir.join(format!("{}.wts", key.hex()));
    let mut bytes = fs::read(&victim).unwrap();
    let last = bytes.len() - 1;
    bytes[last] ^= 0xff;
    fs::write(&victim, &bytes).unwrap();
    let report = store.verify().unwrap();
    assert_eq!(report.ok, 4);
    assert_eq!(report.quarantined.len(), 1);
    assert_eq!(report.quarantined[0].0, victim);
    assert!(!victim.exists());

    // gc removes only the quarantined residue; the other artifacts and
    // stray unrelated files survive.
    fs::write(dir.join("unrelated.txt"), b"keep me").unwrap();
    let report = store.gc().unwrap();
    assert_eq!(report.removed, 1);
    assert!(report.bytes_freed > 0);
    assert_eq!(store.ls().unwrap().len(), 4);
    assert!(dir.join("unrelated.txt").exists());
    fs::remove_dir_all(&dir).unwrap();
}
