//! Redundancy-free design-space exploration (§5.1 / Fig. 8, abridged).
//!
//! Compares four functionally equivalent implementations of the same
//! function — the two `b9_variants` synthesis styles plus buffered and
//! XOR-expanded rewrites — on consolidated output error at a few ε points.
//! No redundancy is added anywhere; reliability differences come purely
//! from structure (levels of noisy logic, fanout, gate count).
//!
//! Run with: `cargo run --release --example design_space`

use relogic::{
    consolidate::Consolidator, Backend, GateEps, InputDistribution, SinglePass, SinglePassOptions,
    Weights,
};
use relogic_netlist::structure::{depth, total_output_levels, CircuitStats};
use relogic_netlist::Circuit;

fn consolidated(c: &Circuit, eps_value: f64, backend: Backend) -> f64 {
    let weights = Weights::compute(c, &InputDistribution::Uniform, backend);
    let engine = SinglePass::new(c, &weights, SinglePassOptions::default());
    let cons = Consolidator::new(c, &InputDistribution::Uniform, backend);
    cons.any_output_error(&engine.run(&GateEps::uniform(c, eps_value)))
}

fn main() {
    let (low, high) = relogic_gen::suite::b9_variants();
    let buffered = relogic_gen::buffer_fanout(&high, 2);
    let balanced = relogic_gen::balance(&high);

    let variants: Vec<(&str, &Circuit)> = vec![
        ("low-fanout (dup+balanced)", &low),
        ("high-fanout (shared chains)", &high),
        ("high + fanout-2 buffer trees", &buffered),
        ("high + tree balancing", &balanced),
    ];

    println!("variant                          gates  depth  total-levels");
    for (name, c) in &variants {
        let s = CircuitStats::of(c);
        println!(
            "{name:32} {:5}  {:5}  {:12}",
            s.gates,
            depth(c),
            total_output_levels(c)
        );
    }

    let backend = Backend::Simulation {
        patterns: 1 << 15,
        seed: 11,
    };
    println!("\nconsolidated P(any output wrong):");
    println!("variant                          eps=0.01   eps=0.03   eps=0.10");
    for (name, c) in &variants {
        let d1 = consolidated(c, 0.01, backend);
        let d3 = consolidated(c, 0.03, backend);
        let d10 = consolidated(c, 0.10, backend);
        println!("{name:32} {d1:8.4}   {d3:8.4}   {d10:8.4}");
    }
    println!(
        "\nFewer levels of noisy logic between inputs and outputs → lower consolidated\n\
         error (the paper's Fig. 8 conclusion). Buffer trees *add* noisy levels, so\n\
         naive fanout buffering can hurt reliability even as it caps fanout."
    );
}
