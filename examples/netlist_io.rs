//! Netlist interchange: parse an ISCAS-85 `.bench` description, analyze
//! its reliability, and export it as BLIF and Graphviz DOT.
//!
//! Run with: `cargo run --release --example netlist_io`

use relogic::{Backend, GateEps, InputDistribution, SinglePass, SinglePassOptions, Weights};
use relogic_netlist::structure::CircuitStats;
use relogic_netlist::{bench, blif, dot};

const BENCH_TEXT: &str = "\
# 2-bit priority arbiter
INPUT(req0)
INPUT(req1)
INPUT(lock)
OUTPUT(grant0)
OUTPUT(grant1)
OUTPUT(busy)
nreq0   = NOT(req0)
grant0  = AND(req0, unlock)
grant1  = AND(req1, nreq0, unlock)
unlock  = NOT(lock)
anyreq  = OR(req0, req1)
busy    = AND(anyreq, lock)
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Parse (note the forward reference to `unlock` — the parser resolves
    // definition order itself, as distributed benchmark files require).
    let circuit = bench::parse(BENCH_TEXT)?;
    let stats = CircuitStats::of(&circuit);
    println!(
        "parsed `{}`: {} inputs, {} gates, {} outputs, depth {}",
        circuit.name(),
        stats.inputs,
        stats.gates,
        stats.outputs,
        stats.depth
    );

    // Analyze.
    let weights = Weights::compute(&circuit, &InputDistribution::Uniform, Backend::Bdd);
    let engine = SinglePass::new(&circuit, &weights, SinglePassOptions::default());
    let result = engine.run(&GateEps::uniform(&circuit, 0.02));
    for (k, out) in circuit.outputs().iter().enumerate() {
        println!("  δ({}) = {:.5}", out.name(), result.per_output()[k]);
    }

    // Export.
    println!("\n--- BLIF ---\n{}", blif::write(&circuit));
    println!(
        "--- DOT (render with `dot -Tsvg`) ---\n{}",
        dot::to_dot(&circuit)
    );
    Ok(())
}
