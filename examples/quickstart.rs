//! Quickstart: estimate the reliability of a small circuit three ways.
//!
//! Builds a 1-bit full adder in which every gate is a binary symmetric
//! channel with crossover probability ε = 0.05, then computes the
//! probability that each output is wrong using:
//!
//! 1. the single-pass analytical engine (the paper's §4 algorithm),
//! 2. the observability closed form (§3, Eq. 3), and
//! 3. Monte Carlo fault injection (the reference the paper validates
//!    against).
//!
//! Run with: `cargo run --release --example quickstart`

use relogic::{
    Backend, GateEps, InputDistribution, ObservabilityMatrix, SinglePass, SinglePassOptions,
    Weights,
};
use relogic_netlist::Circuit;
use relogic_sim::{estimate, MonteCarloConfig};

fn main() {
    // 1. Describe the circuit: a full adder.
    let mut c = Circuit::new("full_adder");
    let a = c.add_input("a");
    let b = c.add_input("b");
    let cin = c.add_input("cin");
    let axb = c.xor([a, b]);
    let sum = c.xor([axb, cin]);
    let g1 = c.and([a, b]);
    let g2 = c.and([axb, cin]);
    let cout = c.or([g1, g2]);
    c.add_output("sum", sum);
    c.add_output("cout", cout);

    // 2. Assign gate failure probabilities (inputs stay noise-free).
    let eps = GateEps::uniform(&c, 0.05);

    // 3. Single-pass analysis: exact weight vectors via BDDs, one
    //    topological sweep with reconvergent-fanout correlation handling.
    let weights = Weights::compute(&c, &InputDistribution::Uniform, Backend::Bdd);
    let engine = SinglePass::new(&c, &weights, SinglePassOptions::default());
    let analytical = engine.run(&eps);

    // 4. Observability closed form — exact when at most one gate fails.
    let obs = ObservabilityMatrix::compute(&c, &InputDistribution::Uniform, Backend::Bdd);
    let closed_form = obs.closed_form(&eps);

    // 5. Monte Carlo reference.
    let mc = estimate(
        &c,
        eps.as_slice(),
        &MonteCarloConfig {
            patterns: 1 << 18,
            ..MonteCarloConfig::default()
        },
    );

    println!(
        "output   single-pass   closed-form   monte-carlo (n={})",
        mc.patterns()
    );
    for (k, out) in c.outputs().iter().enumerate() {
        println!(
            "{:6}   {:>11.5}   {:>11.5}   {:>11.5}",
            out.name(),
            analytical.per_output()[k],
            closed_form[k],
            mc.per_output()[k],
        );
    }
    println!(
        "\nper-node detail (sum output): Pr(0->1) = {:.5}, Pr(1->0) = {:.5}",
        analytical.p01(sum),
        analytical.p10(sum)
    );
}
