//! Redundancy trade-off exploration: TMR schemes quantified with the
//! single-pass analysis and checked against Monte Carlo.
//!
//! Demonstrates three findings the `relogic` analysis makes cheap to
//! obtain:
//!
//! 1. With voters as noisy as the logic they protect, blanket TMR *hurts*
//!    a control circuit like x2 at every ε — the voters add more exposure
//!    than the redundancy removes. This is precisely why the paper argues
//!    for analysis-directed insertion instead of blanket redundancy.
//! 2. With hardened voters (ε/10, e.g. larger cells), output-level TMR
//!    wins at small ε, with the margin shrinking as ε grows.
//! 3. Either way, the single-pass analysis prices every variant in
//!    milliseconds, making the design space cheap to explore.
//!
//! Run with: `cargo run --release --example redundancy_tradeoffs`

use relogic::{
    Backend, GateEps, InputDistribution, ObservabilityMatrix, SinglePass, SinglePassOptions,
    Weights,
};
use relogic_gen::{tmr_gates, tmr_outputs, tmr_selected};
use relogic_netlist::Circuit;

/// Mean output error with uniform gate ε, except that nodes for which
/// `hardened` returns true fail 10× less often (e.g. voters built from
/// larger, slower cells).
fn mean_delta(
    c: &Circuit,
    eps_value: f64,
    hardened: impl Fn(relogic_netlist::NodeId) -> bool,
) -> f64 {
    let backend = Backend::Simulation {
        patterns: 1 << 15,
        seed: 17,
    };
    let w = Weights::compute(c, &InputDistribution::Uniform, backend);
    let eps = GateEps::from_fn(c, |id| {
        if !c.node(id).kind().is_gate() {
            0.0
        } else if hardened(id) {
            eps_value / 10.0
        } else {
            eps_value
        }
    });
    let r = SinglePass::new(c, &w, SinglePassOptions::default()).run(&eps);
    let d = r.per_output();
    d.iter().sum::<f64>() / d.len() as f64
}

fn main() {
    let base = relogic_gen::suite::x2();
    let full_outputs = tmr_outputs(&base);
    let full_gates = tmr_gates(&base);

    // Analysis-directed selection: protect the top-k most critical gates.
    let obs = ObservabilityMatrix::compute(
        &base,
        &InputDistribution::Uniform,
        Backend::Simulation {
            patterns: 1 << 14,
            seed: 7,
        },
    );
    let mut ranked: Vec<_> = base
        .node_ids()
        .filter(|&id| base.node(id).kind().is_gate())
        .map(|id| (id, obs.any(id)))
        .collect();
    ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite"));
    let top8: Vec<_> = ranked.iter().take(8).map(|&(id, _)| id).collect();
    let selective = tmr_selected(&base, &top8);

    // In `tmr_outputs` the voters are the 5·outputs gates appended last.
    let voter_start = full_outputs.len() - 5 * base.output_count();
    let voters_of_full = move |id: relogic_netlist::NodeId| id.index() >= voter_start;

    println!("variant                                 gates   mean-delta @ eps:");
    println!(
        "                                                0.001      0.01       0.05       0.20"
    );
    let never = |_: relogic_netlist::NodeId| false;
    type HardenedFn<'a> = &'a dyn Fn(relogic_netlist::NodeId) -> bool;
    let rows: Vec<(&str, &Circuit, HardenedFn)> = vec![
        ("unprotected x2", &base, &never),
        ("TMR at outputs, noisy voters", &full_outputs, &never),
        ("TMR every gate, noisy voters", &full_gates, &never),
        ("TMR top-8 critical, noisy voters", &selective, &never),
        (
            "TMR at outputs, hardened voters",
            &full_outputs,
            &voters_of_full,
        ),
    ];
    for (name, c, hardened) in rows {
        print!("{name:39} {:5}", c.gate_count());
        for &e in &[0.001, 0.01, 0.05, 0.2] {
            print!("   {:.6}", mean_delta(c, e, hardened));
        }
        println!();
    }
    println!(
        "\nReadings: with voters as noisy as the logic, every TMR variant loses on x2 at\n\
         every ε — the voters add more exposure than the redundancy removes, which is\n\
         why §5.1 argues for analysis-directed rather than blanket insertion. Hardening\n\
         only the voters (ε/10) flips output-level TMR into a clear win at small ε,\n\
         shrinking to parity as ε grows and every variant saturates."
    );
}
