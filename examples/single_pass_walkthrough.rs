//! A gate-by-gate walkthrough of single-pass reliability analysis on the
//! paper's Fig. 2 example circuit.
//!
//! For every gate this prints what the paper's Fig. 2 annotates: the weight
//! vector (joint error-free fanin distribution), the gate's ε, and the
//! propagated `Pr(0→1)` / `Pr(1→0)` error probabilities. The fanout of
//! gate `g2` reconverges at `g6`, so the run also shows the correlation
//! coefficients tracked between the reconverging signals `g4` and `g5`.
//!
//! Run with: `cargo run --release --example single_pass_walkthrough`

use relogic::{Backend, GateEps, InputDistribution, SinglePass, SinglePassOptions, Weights};
use relogic_gen::suite;
use relogic_sim::exact_reliability;

fn main() {
    let c = suite::fig2_example();
    let eps_value = 0.05;
    let eps = GateEps::uniform(&c, eps_value);
    let weights = Weights::compute(&c, &InputDistribution::Uniform, Backend::Bdd);
    let engine = SinglePass::new(&c, &weights, SinglePassOptions::default());
    let result = engine.run(&eps);

    println!("single-pass walkthrough of the Fig. 2 circuit (uniform gate ε = {eps_value})\n");
    for (id, node) in c.iter() {
        if !node.kind().is_gate() {
            continue;
        }
        let w = weights.vector(id);
        let wtext: Vec<String> = w.iter().map(|x| format!("{x:.3}")).collect();
        println!(
            "{:>3} {:5} fanins {:?}",
            c.display_name(id),
            node.kind().to_string(),
            node.fanins()
                .iter()
                .map(|&f| c.display_name(f))
                .collect::<Vec<_>>()
        );
        println!("      weight vector  [{}]", wtext.join(", "));
        println!(
            "      Pr(0->1) = {:.5}   Pr(1->0) = {:.5}   delta = {:.5}",
            result.p01(id),
            result.p10(id),
            result.node_delta(id)
        );
    }

    let g4 = c.find("g4").expect("g4 named");
    let g5 = c.find("g5").expect("g5 named");
    match result.correlation(g4, g5) {
        Some(coeffs) => {
            println!("\ncorrelation coefficients between g4 and g5 (reconverging at g6):");
            println!(
                "  C[0->1][0->1] = {:.4}   C[0->1][1->0] = {:.4}",
                coeffs[0][0], coeffs[0][1]
            );
            println!(
                "  C[1->0][0->1] = {:.4}   C[1->0][1->0] = {:.4}",
                coeffs[1][0], coeffs[1][1]
            );
        }
        None => println!("\ng4 and g5 are treated as independent (no coefficients tracked)"),
    }

    let exact = exact_reliability(&c, eps.as_slice());
    println!(
        "\noutput reliability: single-pass delta = {:.6}, exhaustive exact = {:.6}",
        result.per_output()[0],
        exact.per_output[0]
    );
}
