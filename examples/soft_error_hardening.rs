//! Soft-error-rate estimation and selective hardening (§3 and §5.1).
//!
//! Single-event upsets are localized to one gate, which is exactly the
//! regime where the observability closed form is *exact*. This example:
//!
//! 1. ranks the gates of the b9 analogue by soft-error criticality
//!    (`ε_i · o_i`, their contribution to the output error rate),
//! 2. greedily hardens a small budget of gates (ε ÷ 10 each), and
//! 3. reports the asymmetric `Pr(0→1)` vs `Pr(1→0)` profile that §5.1
//!    proposes for directing quadded-logic-style asymmetric redundancy.
//!
//! Run with: `cargo run --release --example soft_error_hardening`

use relogic::applications::{asymmetry_report, selective_hardening};
use relogic::{
    Backend, GateEps, InputDistribution, ObservabilityMatrix, SinglePass, SinglePassOptions,
    Weights,
};

fn main() {
    let c = relogic_gen::suite::b9();
    let eps = GateEps::uniform(&c, 1e-3); // SEU-like rarity
    let backend = Backend::Bdd;

    // --- criticality ranking (closed form is exact for single failures) ---
    let obs = ObservabilityMatrix::compute(&c, &InputDistribution::Uniform, backend);
    println!("top 10 soft-error-critical gates of b9 (ε·o, any-output observability):");
    let mut ranked: Vec<_> = c
        .node_ids()
        .filter(|&id| c.node(id).kind().is_gate())
        .map(|id| (id, eps.get(id) * obs.any(id)))
        .collect();
    ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite"));
    for (id, crit) in ranked.iter().take(10) {
        println!(
            "  {:>5}  kind {:5}  criticality {:.3e}  observability {:.3}",
            c.display_name(*id),
            c.node(*id).kind().to_string(),
            crit,
            obs.any(*id)
        );
    }

    // --- selective hardening under the single-pass model ---
    let weights = Weights::compute(&c, &InputDistribution::Uniform, backend);
    let budget = 8;
    let plan = selective_hardening(&c, &weights, &eps, budget, 0.1);
    println!(
        "\nselective hardening: baseline mean output δ = {:.3e}",
        plan.baseline
    );
    for (i, step) in plan.steps.iter().enumerate() {
        println!(
            "  step {}: harden {:>5} → mean δ = {:.3e}",
            i + 1,
            c.display_name(step.node),
            step.mean_delta_after
        );
    }
    println!(
        "hardening {budget} of {} gates improves reliability by {:.1}%",
        c.gate_count(),
        plan.improvement() * 100.0
    );

    // --- asymmetric redundancy guidance ---
    let engine = SinglePass::new(&c, &weights, SinglePassOptions::default());
    let result = engine.run(&GateEps::uniform(&c, 0.02));
    let report = asymmetry_report(&c, &result);
    println!("\nmost direction-skewed nodes at ε = 0.02 (asymmetric redundancy targets):");
    for row in report.iter().take(8) {
        println!(
            "  {:>5}  Pr(0→1) = {:.4}  Pr(1→0) = {:.4}  skew = {:.2}",
            c.display_name(row.node),
            row.p01,
            row.p10,
            row.skew()
        );
    }
}
