//! Umbrella crate for the `relogic` workspace.
//!
//! Re-exports the member crates so the root `examples/` and `tests/` can use
//! a single dependency. Library users should depend on the member crates
//! directly.

pub use relogic as core;
pub use relogic_bdd as bdd;
pub use relogic_gen as gen;
pub use relogic_netlist as netlist;
pub use relogic_sim as sim;
