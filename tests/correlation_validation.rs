//! Validates the §4.1 correlation coefficients against exhaustively
//! computed ground truth on small circuits.
//!
//! Ground truth: enumerate every input pattern × every gate-failure subset,
//! simulate clean and noisy values, and accumulate the exact joint
//! probabilities of `0→1`/`1→0` error events on signal pairs. The exact
//! coefficient is `C = P(ev_a ∧ ev_b) / (P(ev_a) · P(ev_b))`.

use relogic::{
    Backend, CorrCoeffs, GateEps, InputDistribution, SinglePass, SinglePassOptions, Weights,
};
use relogic_netlist::{Circuit, NodeId};
use relogic_sim::{exhaustive_block_count, exhaustive_lane_mask, PackedSim};

/// Exact event probabilities for a pair of nodes, computed by enumeration.
///
/// Following the paper, `Pr(l₀→₁)` is *conditional* on the signal's
/// error-free value, so every probability here is normalized by the mass
/// of its fault-free context.
struct PairStats {
    /// Unconditional `P(ev ∧ context)`; ev 0 = rise (0→1), 1 = fall.
    pa: [f64; 2],
    pb: [f64; 2],
    /// Unconditional joint `P(ev_a ∧ ev_b)`.
    joint: [[f64; 2]; 2],
    /// Fault-free context masses: `ctx_a[0] = P(clean_a = 0)`, etc.
    ctx_a: [f64; 2],
    ctx_b: [f64; 2],
    /// `ctx_joint[ca][cb] = P(clean_a = ca-th context ∧ clean_b = …)`,
    /// where context 0 requires the clean value 0 (rise) and 1 requires 1.
    ctx_joint: [[f64; 2]; 2],
}

impl PairStats {
    /// Conditional marginal for node a: `P(ev | clean context)`.
    fn pa_cond(&self, ev: usize) -> f64 {
        if self.ctx_a[ev] > 1e-12 {
            self.pa[ev] / self.ctx_a[ev]
        } else {
            0.0
        }
    }

    fn pb_cond(&self, ev: usize) -> f64 {
        if self.ctx_b[ev] > 1e-12 {
            self.pb[ev] / self.ctx_b[ev]
        } else {
            0.0
        }
    }

    fn coeffs(&self) -> CorrCoeffs {
        let mut c = [[1.0f64; 2]; 2];
        for (ea, row) in c.iter_mut().enumerate() {
            for (eb, slot) in row.iter_mut().enumerate() {
                let joint_cond = if self.ctx_joint[ea][eb] > 1e-12 {
                    self.joint[ea][eb] / self.ctx_joint[ea][eb]
                } else {
                    0.0
                };
                let denom = self.pa_cond(ea) * self.pb_cond(eb);
                if denom > 1e-12 {
                    *slot = joint_cond / denom;
                }
            }
        }
        c
    }
}

/// Enumerates inputs × failure subsets exactly.
fn exact_pair_stats(circuit: &Circuit, eps: &GateEps, a: NodeId, b: NodeId) -> PairStats {
    let noisy: Vec<usize> = (0..circuit.len())
        .filter(|&i| eps.as_slice()[i] > 0.0)
        .collect();
    assert!(noisy.len() <= 16, "too many noisy nodes for enumeration");
    assert!(circuit.input_count() <= 12);
    let blocks = exhaustive_block_count(circuit.input_count());
    let lane_mask = exhaustive_lane_mask(circuit.input_count());
    #[allow(clippy::cast_precision_loss)]
    let pattern_count = f64::from(lane_mask.count_ones())
        * if circuit.input_count() > 6 {
            blocks as f64
        } else {
            1.0
        };

    let mut clean = PackedSim::new(circuit);
    let mut faulty = PackedSim::new(circuit);
    let mut masks = vec![0u64; circuit.len()];
    let mut pa = [0.0f64; 2];
    let mut pb = [0.0f64; 2];
    let mut joint = [[0.0f64; 2]; 2];
    let mut ctx_a = [0.0f64; 2];
    let mut ctx_b = [0.0f64; 2];
    let mut ctx_joint = [[0.0f64; 2]; 2];

    for block in 0..blocks {
        clean.exhaustive_inputs(block);
        clean.propagate(circuit);
        // Context masses depend only on the fault-free simulation.
        let ca = clean.node_word(a);
        let cb = clean.node_word(b);
        let actx = [!ca & lane_mask, ca & lane_mask];
        let bctx = [!cb & lane_mask, cb & lane_mask];
        for (ea, &wa) in actx.iter().enumerate() {
            #[allow(clippy::cast_precision_loss)]
            {
                ctx_a[ea] += f64::from(wa.count_ones()) / pattern_count;
            }
            for (eb, &wb) in bctx.iter().enumerate() {
                #[allow(clippy::cast_precision_loss)]
                {
                    ctx_joint[ea][eb] += f64::from((wa & wb).count_ones()) / pattern_count;
                }
            }
        }
        for (eb, &wb) in bctx.iter().enumerate() {
            #[allow(clippy::cast_precision_loss)]
            {
                ctx_b[eb] += f64::from(wb.count_ones()) / pattern_count;
            }
        }
        for subset in 0..1u64 << noisy.len() {
            let mut weight = 1.0f64;
            for (j, &node) in noisy.iter().enumerate() {
                weight *= if subset >> j & 1 == 1 {
                    eps.as_slice()[node]
                } else {
                    1.0 - eps.as_slice()[node]
                };
            }
            if weight <= 0.0 {
                continue;
            }
            for m in masks.iter_mut() {
                *m = 0;
            }
            for (j, &node) in noisy.iter().enumerate() {
                if subset >> j & 1 == 1 {
                    masks[node] = u64::MAX;
                }
            }
            faulty.copy_from(&clean);
            faulty.propagate_with_flips(circuit, &masks);

            let ca = clean.node_word(a);
            let fa = faulty.node_word(a);
            let cb = clean.node_word(b);
            let fb = faulty.node_word(b);
            // rise = clean 0, noisy 1; fall = clean 1, noisy 0
            let ev_a = [(!ca & fa) & lane_mask, (ca & !fa) & lane_mask];
            let ev_b = [(!cb & fb) & lane_mask, (cb & !fb) & lane_mask];
            for (ea, &wa) in ev_a.iter().enumerate() {
                #[allow(clippy::cast_precision_loss)]
                let frac = f64::from(wa.count_ones()) / pattern_count;
                pa[ea] += weight * frac;
                for (eb, &wb) in ev_b.iter().enumerate() {
                    #[allow(clippy::cast_precision_loss)]
                    let fracj = f64::from((wa & wb).count_ones()) / pattern_count;
                    joint[ea][eb] += weight * fracj;
                }
            }
            for (eb, &wb) in ev_b.iter().enumerate() {
                #[allow(clippy::cast_precision_loss)]
                let frac = f64::from(wb.count_ones()) / pattern_count;
                pb[eb] += weight * frac;
            }
        }
    }
    PairStats {
        pa,
        pb,
        joint,
        ctx_a,
        ctx_b,
        ctx_joint,
    }
}

fn analyze(c: &Circuit, e: f64) -> relogic::SinglePassResult {
    let w = Weights::compute(c, &InputDistribution::Uniform, Backend::Bdd);
    SinglePass::new(c, &w, SinglePassOptions::default()).run(&GateEps::uniform(c, e))
}

#[test]
fn buffer_pair_coefficients_are_exact() {
    // p = BUF(s), q = BUF(s): before their own noise, p and q carry the
    // same error; the coefficients follow closed forms the engine should
    // reproduce almost exactly.
    let mut c = Circuit::new("t");
    let a = c.add_input("a");
    let s = c.not(a);
    let p = c.buf(s);
    let q = c.buf(s);
    let g = c.xor([p, q]);
    c.add_output("y", g);
    let e = 0.1;
    let r = analyze(&c, e);
    let exact = exact_pair_stats(&c, &GateEps::uniform(&c, e), p, q).coeffs();
    let tracked = r.correlation(p, q).expect("pair tracked");
    let stats = exact_pair_stats(&c, &GateEps::uniform(&c, e), p, q);
    for ea in 0..2 {
        for eb in 0..2 {
            // Cross-direction contexts (clean_p = 0 ∧ clean_q = 1) are
            // impossible for two branches of the same wire; the exact
            // conditional is vacuous there and the tracked value is never
            // multiplied by nonzero weight, so only compare live contexts.
            if stats.ctx_joint[ea][eb] < 1e-9 {
                continue;
            }
            assert!(
                (tracked[ea][eb] - exact[ea][eb]).abs() < 0.25,
                "C[{ea}][{eb}]: tracked {} vs exact {}",
                tracked[ea][eb],
                exact[ea][eb]
            );
        }
    }
    // Positive same-event correlation on the live contexts.
    assert!(tracked[0][0] > 1.5, "same-direction events correlate");
}

#[test]
fn observability_exclusive_pairs_are_a_known_limitation() {
    // Characterization test pinning a *documented* weakness of the §4.1
    // machinery (shared with the paper, whose own worst Table 2 rows are
    // the reconvergence-heavy c499/c1355): for p = AND(s, b), q = OR(s, b)
    // the contexts in which s-errors reach p (b = 1) and reach q (b = 0)
    // are mutually exclusive, so the true error events are nearly
    // independent — but the Fig. 4 conditionals, built on the
    // *unconditioned* weight vector, report positive correlation and
    // overestimate the joint error. If this ever starts matching the exact
    // value, the engine has improved and this test should be tightened.
    use relogic::consolidate::Consolidator;
    let mut c = Circuit::new("t");
    let a = c.add_input("a");
    let b = c.add_input("b");
    let s = c.not(a);
    let p = c.and([s, b]);
    let q = c.or([s, b]);
    c.add_output("op", p);
    c.add_output("oq", q);
    let cons = Consolidator::new(&c, &InputDistribution::Uniform, Backend::Bdd);
    let e = 0.05;
    let r = analyze(&c, e);
    let stats = exact_pair_stats(&c, &GateEps::uniform(&c, e), p, q);
    let exact_joint: f64 = stats.joint.iter().flatten().sum();
    let modeled = cons.joint_error(&r, 0, 1);
    // Overestimates, but stays within the hard bounds and within ~3× —
    // the envelope observed on the SEC lattices.
    assert!(modeled >= exact_joint - 1e-12, "direction of the bias");
    assert!(
        modeled <= 3.0 * exact_joint,
        "modeled {modeled} vs exact {exact_joint}: bias envelope exceeded"
    );
    assert!(modeled <= r.per_output()[0].min(r.per_output()[1]) + 1e-12);
}

#[test]
fn tracked_joint_error_improves_on_independence() {
    // For the reconverging pair feeding the output, using the tracked
    // coefficients to predict P(both err) must beat assuming independence.
    let mut c = Circuit::new("t");
    let a = c.add_input("a");
    let b = c.add_input("b");
    let s = c.nand([a, b]);
    let p = c.buf(s);
    let q = c.not(s);
    let g = c.and([p, q]);
    c.add_output("y", g);
    let e = 0.1;
    let r = analyze(&c, e);
    let stats = exact_pair_stats(&c, &GateEps::uniform(&c, e), p, q);
    let tracked = r.correlation(p, q).expect("pair tracked");

    // Exact conditional P(p rise ∧ q fall | contexts) vs the engine's
    // model and vs independence.
    let exact_joint = stats.joint[0][1] / stats.ctx_joint[0][1];
    let independent = stats.pa_cond(0) * stats.pb_cond(1);
    let modeled = stats.pa_cond(0) * stats.pb_cond(1) * tracked[0][1];
    assert!(
        (modeled - exact_joint).abs() < (independent - exact_joint).abs() + 1e-12,
        "modeled {modeled} vs independent {independent} vs exact {exact_joint}"
    );
}

#[test]
fn untracked_pairs_are_actually_independent() {
    // Two disjoint cones: no correlation should be tracked, and the exact
    // coefficients should indeed be ≈ 1.
    let mut c = Circuit::new("t");
    let a = c.add_input("a");
    let b = c.add_input("b");
    let x = c.add_input("x");
    let y_in = c.add_input("y");
    let g1 = c.and([a, b]);
    let g2 = c.or([x, y_in]);
    c.add_output("o1", g1);
    c.add_output("o2", g2);
    let e = 0.2;
    let r = analyze(&c, e);
    assert!(r.correlation(g1, g2).is_none());
    let exact = exact_pair_stats(&c, &GateEps::uniform(&c, e), g1, g2).coeffs();
    for row in &exact {
        for &v in row {
            assert!(
                (v - 1.0).abs() < 1e-9,
                "disjoint cones must be independent: {v}"
            );
        }
    }
}
