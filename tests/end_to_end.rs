//! End-to-end integration: textual netlist → structural analysis →
//! reliability engines → Monte Carlo cross-check, spanning every crate in
//! the workspace.

use relogic::{
    metrics, Backend, GateEps, InputDistribution, ObservabilityMatrix, SinglePass,
    SinglePassOptions, Weights,
};
use relogic_netlist::structure::CircuitStats;
use relogic_netlist::{bench, blif};
use relogic_sim::{estimate, exact_reliability, MonteCarloConfig};

const ARBITER: &str = "\
INPUT(r0)
INPUT(r1)
INPUT(r2)
INPUT(en)
OUTPUT(g0)
OUTPUT(g1)
OUTPUT(g2)
n0 = NOT(r0)
n1 = NOT(r1)
g0 = AND(r0, en)
p1 = AND(r1, n0)
g1 = AND(p1, en)
p2 = AND(r2, n0, n1)
g2 = AND(p2, en)
";

#[test]
fn parse_analyze_crosscheck() {
    let circuit = bench::parse(ARBITER).expect("parses");
    let stats = CircuitStats::of(&circuit);
    assert_eq!(stats.inputs, 4);
    assert_eq!(stats.outputs, 3);

    let eps = GateEps::uniform(&circuit, 0.08);
    let weights = Weights::compute(&circuit, &InputDistribution::Uniform, Backend::Bdd);
    let engine = SinglePass::new(&circuit, &weights, SinglePassOptions::default());
    let sp = engine.run(&eps);
    let exact = exact_reliability(&circuit, eps.as_slice());
    for k in 0..3 {
        assert!(
            (sp.per_output()[k] - exact.per_output[k]).abs() < 0.01,
            "output {k}: sp {} vs exact {}",
            sp.per_output()[k],
            exact.per_output[k]
        );
    }
}

#[test]
fn blif_and_bench_roundtrips_preserve_analysis() {
    let original = bench::parse(ARBITER).expect("parses");
    let via_blif = blif::parse(&blif::write(&original)).expect("blif roundtrip");
    let via_bench = bench::parse(&bench::write(&original)).expect("bench roundtrip");

    // The roundtripped circuits may differ structurally (BLIF covers expand
    // to AND/OR/NOT), but must compute the same function.
    for v in 0..16u32 {
        let bits: Vec<bool> = (0..4).map(|j| v >> j & 1 != 0).collect();
        assert_eq!(original.eval(&bits), via_blif.eval(&bits), "blif v={v:04b}");
        assert_eq!(
            original.eval(&bits),
            via_bench.eval(&bits),
            "bench v={v:04b}"
        );
    }
}

#[test]
fn suite_circuit_single_pass_tracks_monte_carlo() {
    let circuit = relogic_gen::suite::x2();
    let weights = Weights::compute(&circuit, &InputDistribution::Uniform, Backend::Bdd);
    let engine = SinglePass::new(&circuit, &weights, SinglePassOptions::default());
    for &e in &[0.05, 0.2] {
        let eps = GateEps::uniform(&circuit, e);
        let sp = engine.run(&eps);
        let mc = estimate(
            &circuit,
            eps.as_slice(),
            &MonteCarloConfig {
                patterns: 1 << 17,
                ..MonteCarloConfig::default()
            },
        );
        let err = metrics::average_percent_error(sp.per_output(), mc.per_output());
        assert!(err < 6.0, "ε={e}: avg error {err}%");
    }
}

#[test]
fn observability_closed_form_is_exact_in_single_failure_regime() {
    let circuit = relogic_gen::suite::fig1_example();
    let obs = ObservabilityMatrix::compute(&circuit, &InputDistribution::Uniform, Backend::Bdd);
    // One noisy gate at a time: closed form must equal exhaustive exactly.
    for id in circuit.node_ids() {
        if !circuit.node(id).kind().is_gate() {
            continue;
        }
        let mut eps = GateEps::zero(&circuit);
        eps.set(id, 0.3);
        let cf = obs.closed_form(&eps);
        let exact = exact_reliability(&circuit, eps.as_slice());
        assert!(
            (cf[0] - exact.per_output[0]).abs() < 1e-12,
            "gate {id}: {} vs {}",
            cf[0],
            exact.per_output[0]
        );
    }
}

#[test]
fn transforms_preserve_reliability_characteristics() {
    // A function-preserving rewrite must leave the *fault-free* outputs
    // identical, even though reliability (with noisy gates) changes.
    let c = relogic_gen::suite::fig2_example();
    let nand_version = relogic_gen::expand_xor_to_nand(&c);
    let buffered = relogic_gen::buffer_fanout(&c, 2);
    for v in 0..8u32 {
        let bits: Vec<bool> = (0..3).map(|j| v >> j & 1 != 0).collect();
        let expect = c.eval(&bits);
        assert_eq!(expect, nand_version.eval(&bits));
        assert_eq!(expect, buffered.eval(&bits));
    }
    // And the analysis still runs on the rewrites.
    for variant in [&nand_version, &buffered] {
        let w = Weights::compute(variant, &InputDistribution::Uniform, Backend::Bdd);
        let r = SinglePass::new(variant, &w, SinglePassOptions::default())
            .run(&GateEps::uniform(variant, 0.1));
        assert!(r.per_output()[0] > 0.0 && r.per_output()[0] <= 0.5 + 1e-9);
    }
}

#[test]
fn umbrella_reexports_are_usable() {
    // The root crate re-exports each member for examples/tests.
    let mut c = relogic_suite::netlist::Circuit::new("t");
    let a = c.add_input("a");
    let g = c.not(a);
    c.add_output("y", g);
    let w = relogic_suite::core::Weights::compute(
        &c,
        &relogic_suite::core::InputDistribution::Uniform,
        relogic_suite::core::Backend::Bdd,
    );
    assert_eq!(w.signal_prob(g), 0.5);
}
