//! Property-based tests over randomly generated circuits and ε vectors.
//!
//! These exercise the cross-crate invariants that hold for *every* circuit:
//! probability ranges, noise-free behaviour, exactness on fanout-free
//! logic, backend agreement, and function preservation under the synthesis
//! transforms.

use proptest::prelude::*;
use relogic::{
    Backend, GateEps, InputDistribution, ObservabilityMatrix, SinglePass, SinglePassOptions,
    Weights,
};
use relogic_gen::{generate, RandomCircuitConfig};
use relogic_netlist::Circuit;
use relogic_sim::exact_reliability;

/// Strategy: a small random circuit plus a uniform ε.
fn small_circuit() -> impl Strategy<Value = (Circuit, f64)> {
    (
        2usize..6,    // inputs
        3usize..18,   // gates
        1usize..4,    // outputs
        any::<u64>(), // seed
        0.0f64..=0.5, // eps
        0.0f64..=0.4, // xor fraction
    )
        .prop_map(|(inputs, gates, outputs, seed, eps, xor)| {
            let c = generate(&RandomCircuitConfig {
                name: "prop".into(),
                inputs,
                gates,
                outputs: outputs.min(gates),
                seed,
                max_arity: 3,
                xor_fraction: xor,
                locality: 8,
                global_edge_fraction: 0.3,
            });
            (c, eps)
        })
}

/// Strategy: a fanout-free (tree) circuit built by consuming each signal at
/// most once, plus a uniform ε.
fn tree_circuit() -> impl Strategy<Value = (Circuit, f64)> {
    (
        proptest::collection::vec(0u8..6, 1..10),
        2usize..5,
        0.0f64..=0.5,
    )
        .prop_map(|(kinds, inputs, eps)| {
            use relogic_netlist::GateKind;
            let mut c = Circuit::new("tree");
            let mut avail: Vec<_> = (0..inputs).map(|i| c.add_input(format!("x{i}"))).collect();
            for k in kinds {
                if avail.len() < 2 {
                    break;
                }
                let a = avail.remove(0);
                let b = avail.remove(0);
                let kind = [
                    GateKind::And,
                    GateKind::Or,
                    GateKind::Nand,
                    GateKind::Nor,
                    GateKind::Xor,
                    GateKind::Xnor,
                ][k as usize];
                let g = c.add_gate(kind, [a, b]).expect("valid");
                avail.push(g);
            }
            let last = *avail.last().expect("nonempty");
            c.add_output("y", last);
            (c, eps)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn single_pass_probabilities_stay_in_unit_interval((c, e) in small_circuit()) {
        let w = Weights::compute(&c, &InputDistribution::Uniform, Backend::Bdd);
        let r = SinglePass::new(&c, &w, SinglePassOptions::default())
            .run(&GateEps::uniform(&c, e));
        for id in c.node_ids() {
            prop_assert!((0.0..=1.0).contains(&r.p01(id)), "p01({id}) = {}", r.p01(id));
            prop_assert!((0.0..=1.0).contains(&r.p10(id)), "p10({id}) = {}", r.p10(id));
            prop_assert!((0.0..=1.0).contains(&r.node_delta(id)));
        }
        for &d in r.per_output() {
            prop_assert!((0.0..=1.0).contains(&d));
        }
    }

    #[test]
    fn zero_noise_means_zero_delta((c, _e) in small_circuit()) {
        let w = Weights::compute(&c, &InputDistribution::Uniform, Backend::Bdd);
        let r = SinglePass::new(&c, &w, SinglePassOptions::default())
            .run(&GateEps::zero(&c));
        for &d in r.per_output() {
            prop_assert_eq!(d, 0.0);
        }
    }

    #[test]
    fn trees_are_exact((c, e) in tree_circuit()) {
        let w = Weights::compute(&c, &InputDistribution::Uniform, Backend::Bdd);
        let eps = GateEps::uniform(&c, e);
        let r = SinglePass::new(&c, &w, SinglePassOptions::default()).run(&eps);
        let exact = exact_reliability(&c, eps.as_slice());
        prop_assert!(
            (r.per_output()[0] - exact.per_output[0]).abs() < 1e-9,
            "tree: sp {} vs exact {}",
            r.per_output()[0],
            exact.per_output[0]
        );
    }

    #[test]
    fn weight_vectors_are_distributions((c, _e) in small_circuit()) {
        let w = Weights::compute(&c, &InputDistribution::Uniform, Backend::Bdd);
        for (id, node) in c.iter() {
            if !node.kind().is_gate() { continue; }
            let v = w.vector(id);
            prop_assert_eq!(v.len(), 1 << node.arity());
            let sum: f64 = v.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-9, "weights sum to {sum}");
            prop_assert!(v.iter().all(|&x| (-1e-12..=1.0 + 1e-12).contains(&x)));
        }
    }

    #[test]
    fn sim_and_bdd_weights_agree((c, _e) in small_circuit()) {
        let exact = Weights::compute(&c, &InputDistribution::Uniform, Backend::Bdd);
        let approx = Weights::compute(
            &c,
            &InputDistribution::Uniform,
            Backend::Simulation { patterns: 1 << 14, seed: 42 },
        );
        for id in c.node_ids() {
            prop_assert!(
                (exact.signal_prob(id) - approx.signal_prob(id)).abs() < 0.05,
                "signal prob of {id}: {} vs {}",
                exact.signal_prob(id),
                approx.signal_prob(id)
            );
        }
    }

    #[test]
    fn observabilities_are_probabilities((c, _e) in small_circuit()) {
        let obs = ObservabilityMatrix::compute(&c, &InputDistribution::Uniform, Backend::Bdd);
        for id in c.node_ids() {
            for k in 0..c.output_count() {
                let o = obs.at_output(id, k);
                prop_assert!((0.0..=1.0).contains(&o), "o({id},{k}) = {o}");
                prop_assert!(obs.any(id) >= o - 1e-12, "any-output obs dominates");
            }
        }
    }

    #[test]
    fn closed_form_matches_exact_for_single_noisy_gate((c, e) in small_circuit()) {
        let obs = ObservabilityMatrix::compute(&c, &InputDistribution::Uniform, Backend::Bdd);
        // pick the last gate (always exists: generators guarantee ≥1 gate)
        let gate = c.node_ids().rev().find(|&id| c.node(id).kind().is_gate()).expect("gate");
        let mut eps = GateEps::zero(&c);
        eps.set(gate, e);
        let cf = obs.closed_form(&eps);
        let exact = exact_reliability(&c, eps.as_slice());
        for (k, (&a, &b)) in cf.iter().zip(&exact.per_output).enumerate() {
            prop_assert!((a - b).abs() < 1e-9, "output {k}: {a} vs {b}");
        }
    }

    #[test]
    fn transforms_preserve_function((c, _e) in small_circuit()) {
        let variants = [
            relogic_gen::buffer_fanout(&c, 2),
            relogic_gen::duplicate_fanout(&c, 2),
            relogic_gen::balance(&c),
            relogic_gen::expand_xor_to_nand(&c),
            relogic_gen::expand_xor_to_and_or(&c),
        ];
        for v in 0..1u32 << c.input_count() {
            let bits: Vec<bool> = (0..c.input_count()).map(|j| v >> j & 1 != 0).collect();
            let expect = c.eval(&bits);
            for (i, variant) in variants.iter().enumerate() {
                prop_assert_eq!(&expect, &variant.eval(&bits), "variant {} v={:b}", i, v);
            }
        }
    }

    #[test]
    fn both_modes_stay_within_absolute_error_envelope((c, e) in small_circuit()) {
        // Neither mode is uniformly better pointwise (plain-mode errors can
        // cancel on XOR-heavy reconvergence, see the c499 discussion in
        // EXPERIMENTS.md), but on small random circuits both must stay
        // within a modest absolute envelope of the exact value.
        let w = Weights::compute(&c, &InputDistribution::Uniform, Backend::Bdd);
        let eps = GateEps::uniform(&c, e);
        let exact = exact_reliability(&c, eps.as_slice());
        let plain = SinglePass::new(&c, &w, SinglePassOptions::without_correlations()).run(&eps);
        let corr = SinglePass::new(&c, &w, SinglePassOptions::default()).run(&eps);
        for k in 0..c.output_count() {
            let pe = (plain.per_output()[k] - exact.per_output[k]).abs();
            let ce = (corr.per_output()[k] - exact.per_output[k]).abs();
            prop_assert!(ce <= 0.12, "output {k}: corrected error {ce}");
            // Plain mode carries no accuracy guarantee under reconvergence
            // (that is the paper's motivation); only guard against
            // catastrophic breakage.
            prop_assert!(pe <= 0.35, "output {k}: plain error {pe}");
        }
    }

    #[test]
    fn monte_carlo_is_unbiased_on_single_gate(e in 0.0f64..=0.5) {
        let mut c = Circuit::new("t");
        let a = c.add_input("a");
        let g = c.not(a);
        c.add_output("y", g);
        let mut eps = GateEps::zero(&c);
        eps.set(g, e);
        let r = relogic_sim::estimate(&c, eps.as_slice(), &relogic_sim::MonteCarloConfig {
            patterns: 1 << 15,
            ..Default::default()
        });
        prop_assert!((r.per_output()[0] - e).abs() < 0.02);
    }
}
